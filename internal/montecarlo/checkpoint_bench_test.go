package montecarlo

import (
	"context"
	"testing"

	"accelwall/internal/checkpoint"
)

// BenchmarkCheckpointOverhead measures the cost of durable progress
// snapshots on a full run: "off" is the plain engine, "on" persists to a
// real fsynced log at the default cadence. The delta is the price of
// crash safety; bench.sh reports it as a percentage, with 5% the budget.
func BenchmarkCheckpointOverhead(b *testing.B) {
	e, err := New(1)
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	cfg := Config{Replicates: benchReplicates, Seed: 1, Workers: 4}

	b.Run("off", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := e.RunCheckpointed(context.Background(), cfg, nil); err != nil {
				b.Fatalf("Run: %v", err)
			}
		}
	})
	b.Run("on", func(b *testing.B) {
		store, err := checkpoint.Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		log, err := store.OpenLog("bench")
		if err != nil {
			b.Fatal(err)
		}
		defer log.Close()
		ck := &Checkpoint{Sink: log, OnError: func(err error) { b.Fatalf("save: %v", err) }}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.RunCheckpointed(context.Background(), cfg, ck); err != nil {
				b.Fatalf("Run: %v", err)
			}
		}
	})
}

// BenchmarkSnapshotSave is the write-path latency of one durable
// snapshot: encode the completed prefix, frame it with a CRC, append, and
// fsync. This is what a running study pays per checkpoint.
func BenchmarkSnapshotSave(b *testing.B) {
	e, err := New(1)
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	cfg := Config{Replicates: benchReplicates, Seed: 1, Workers: 4}.withDefaults()
	outs := make([]replicateOut, cfg.Replicates)
	e.runReplicatesInto(context.Background(), cfg, outs, 0, nil)

	store, err := checkpoint.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	log, err := store.OpenLog("bench")
	if err != nil {
		b.Fatal(err)
	}
	defer log.Close()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := log.Save(encodeSnapshot(cfg, outs, cfg.Replicates)); err != nil {
			b.Fatalf("Save: %v", err)
		}
	}
}

// BenchmarkResume compares a cold run against one restored from a
// half-complete snapshot. Resume decodes the prefix instead of
// recomputing it, so "half" should cost roughly half of "cold" — the
// wall-clock value of not losing completed work to a crash.
func BenchmarkResume(b *testing.B) {
	e, err := New(1)
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	cfg := Config{Replicates: benchReplicates, Seed: 1, Workers: 4}.withDefaults()
	outs := make([]replicateOut, cfg.Replicates)
	e.runReplicatesInto(context.Background(), cfg, outs, 0, nil)
	half := encodeSnapshot(cfg, outs, cfg.Replicates/2)

	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := e.RunCheckpointed(context.Background(), cfg, nil); err != nil {
				b.Fatalf("Run: %v", err)
			}
		}
	})
	b.Run("half", func(b *testing.B) {
		ck := &Checkpoint{Resume: half}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := e.RunCheckpointed(context.Background(), cfg, ck)
			if err != nil {
				b.Fatalf("Run: %v", err)
			}
			if res.Resumed != cfg.Replicates/2 {
				b.Fatalf("resumed %d, want %d", res.Resumed, cfg.Replicates/2)
			}
		}
	})
}
