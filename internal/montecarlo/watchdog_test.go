package montecarlo

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"accelwall/internal/faultinject"
	"accelwall/internal/leakcheck"
	"accelwall/internal/resources"
)

// wdLog captures watchdog output across goroutines.
type wdLog struct {
	mu   sync.Mutex
	logs []string
}

func (l *wdLog) logf(format string, args ...any) {
	l.mu.Lock()
	l.logs = append(l.logs, fmt.Sprintf(format, args...))
	l.mu.Unlock()
}

func (l *wdLog) joined() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return strings.Join(l.logs, "\n")
}

// TestWatchdogReplicateRescuesWedgedChunk wedges exactly one replicate
// with an injected delay past the watchdog deadline: the run must finish
// with output identical to an unwedged reference (replicates are a pure
// function of their substream, so the rescue recomputes the same
// numbers), the wedged chunk requeued exactly once, no leaks.
func TestWatchdogReplicateRescuesWedgedChunk(t *testing.T) {
	ref, err := Run(testConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	total := uint64(testConfig(0).Replicates) // one SiteReplicate hit per replicate

	for _, workers := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("w%d", workers), func(t *testing.T) {
			leakcheck.Check(t)
			rec := &wdLog{}
			// A healthy chunk here is real work — 8 corpus resamples and
			// refits, a few hundred ms under the race detector — so the
			// deadline must sit well above that while staying far under
			// the injected wedge.
			resources.EnableWatchdog(time.Second, rec.logf)
			resources.ResetWatchdogCounters()
			defer func() {
				resources.DisableWatchdog()
				resources.ResetWatchdogCounters()
			}()
			faultinject.Enable(faultinject.New(1).Set(SiteReplicate, faultinject.Rule{
				Mode: faultinject.ModeDelay, Every: total, Delay: 4 * time.Second,
			}))
			defer faultinject.Disable()

			res, err := Run(testConfig(workers))
			if err != nil {
				t.Fatalf("wedged run failed: %v", err)
			}
			if !sameOutput(res, ref) {
				t.Fatal("rescue changed the reduced result")
			}
			if fires := resources.WatchdogFires(); fires != 1 {
				t.Fatalf("watchdog fired %d times, want exactly 1", fires)
			}
			if req := resources.WatchdogRequeues(); req != 1 {
				t.Fatalf("watchdog requeued %d chunks, want exactly 1", req)
			}
			logs := rec.joined()
			if !strings.Contains(logs, "watchdog fired") || !strings.Contains(logs, "goroutine") {
				t.Fatalf("watchdog log missing fire notice or stack dump:\n%.500s", logs)
			}
			// The wedged original wakes within leakcheck's polling grace
			// and discards against the committed claim; no explicit wait.
		})
	}
}
