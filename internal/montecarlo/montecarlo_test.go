package montecarlo

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// testReplicates keeps unit-test runs fast while staying well above the
// validation floor of 10.
const testReplicates = 24

// marshalResult renders a result for byte comparison with the worker count
// normalized away (it is the one config field allowed to differ).
func marshalResult(t *testing.T, r *Result) []byte {
	t.Helper()
	r.Config.Workers = 0
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return b
}

// TestRunDeterministicAcrossWorkers is the headline guarantee: the same
// (seed, replicates, config) produces bit-identical bands whether the pool
// has 1, 2, or 8 workers.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	e, err := New(1)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var want []byte
	for _, workers := range []int{1, 2, 8} {
		res, err := e.Run(Config{Replicates: testReplicates, Seed: 7, Workers: workers})
		if err != nil {
			t.Fatalf("Run(workers=%d): %v", workers, err)
		}
		got := marshalResult(t, res)
		if want == nil {
			want = got
			continue
		}
		if string(got) != string(want) {
			t.Errorf("workers=%d produced different bands than workers=1", workers)
		}
	}
}

// TestRunDeterministicAcrossSeeds checks the seed actually matters: two
// different root seeds must not collapse to the same bands.
func TestRunDeterministicAcrossSeeds(t *testing.T) {
	e, err := New(1)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	a, err := e.Run(Config{Replicates: testReplicates, Seed: 1, Workers: 2})
	if err != nil {
		t.Fatalf("Run(seed=1): %v", err)
	}
	b, err := e.Run(Config{Replicates: testReplicates, Seed: 2, Workers: 2})
	if err != nil {
		t.Fatalf("Run(seed=2): %v", err)
	}
	if string(marshalResult(t, a)) == string(marshalResult(t, b)) {
		t.Errorf("seed 1 and seed 2 produced identical bands")
	}
}

// TestBandShuffleInvariant checks the reducer is order-free: banding a
// shuffled copy of the samples gives the same quantiles.
func TestBandShuffleInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vals := make([]float64, 101)
	for i := range vals {
		vals[i] = rng.NormFloat64()*10 + 50
	}
	want, err := band(vals, 0.9)
	if err != nil {
		t.Fatalf("band: %v", err)
	}
	for trial := 0; trial < 5; trial++ {
		shuffled := append([]float64(nil), vals...)
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		got, err := band(shuffled, 0.9)
		if err != nil {
			t.Fatalf("band(shuffled): %v", err)
		}
		if got != want {
			t.Fatalf("trial %d: shuffled band %+v != %+v", trial, got, want)
		}
	}
}

// TestResultBandOrdering checks every produced band is internally ordered
// and every probability is a probability.
func TestResultBandOrdering(t *testing.T) {
	res, err := Run(Config{Replicates: testReplicates, Seed: 1, Workers: 2})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	checkBand := func(name string, b Band) {
		t.Helper()
		if !(b.P5 <= b.P25 && b.P25 <= b.P50 && b.P50 <= b.P75 && b.P75 <= b.P95) {
			t.Errorf("%s: quantiles out of order: %+v", name, b)
		}
		if b.Lo > b.Hi {
			t.Errorf("%s: Lo %g > Hi %g", name, b.Lo, b.Hi)
		}
	}
	checkBand("AreaFitA", res.AreaFitA)
	checkBand("AreaFitB", res.AreaFitB)
	if len(res.Nodes) == 0 {
		t.Fatalf("no node bands")
	}
	for _, n := range res.Nodes {
		checkBand("node throughput", n.Throughput)
		checkBand("node efficiency", n.Efficiency)
	}
	if len(res.Domains) != 8 {
		t.Fatalf("got %d domain cells, want 8 (2 targets x 4 domains)", len(res.Domains))
	}
	for _, d := range res.Domains {
		checkBand(d.Domain.String()+" phys", d.PhysLimit)
		checkBand(d.Domain.String()+" log", d.RemainLog)
		checkBand(d.Domain.String()+" linear", d.RemainLinear)
		checkBand(d.Domain.String()+" csr", d.FinalCSR)
		for _, p := range []float64{d.PBelowTargetLog, d.PBelowTargetLinear} {
			if p < 0 || p > 1 {
				t.Errorf("%v: probability %g outside [0, 1]", d.Domain, p)
			}
		}
		if d.PointRemainLog <= 0 || d.PointRemainLinear <= 0 {
			t.Errorf("%v: non-positive point estimates %g / %g", d.Domain, d.PointRemainLog, d.PointRemainLinear)
		}
	}
	if res.Replicates+res.Failed != testReplicates {
		t.Errorf("usable %d + failed %d != %d", res.Replicates, res.Failed, testReplicates)
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string // substring of the error, "" for valid
	}{
		{"zero is valid", Config{}, ""},
		{"too few replicates", Config{Replicates: 5}, "replicates"},
		{"too many replicates", Config{Replicates: MaxReplicates + 1}, "replicates"},
		{"confidence at 1", Config{Confidence: 1}, "confidence"},
		{"negative confidence", Config{Confidence: -0.5}, "confidence"},
		{"negative gain target", Config{GainTarget: -2}, "gain target"},
		{"jitter too large", Config{CMOSJitter: 0.5}, "jitter"},
		{"jitter negative", Config{CMOSJitter: -0.1}, "jitter"},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

// TestNormalized checks worker count is scrubbed from the memoization key
// while every default is pinned.
func TestNormalized(t *testing.T) {
	a := Config{Workers: 4}.Normalized()
	b := Config{Workers: 16}.Normalized()
	if a != b {
		t.Errorf("normalized configs differ only by workers: %+v vs %+v", a, b)
	}
	if a.Replicates != DefaultReplicates || a.Seed != 1 || a.Confidence != DefaultConfidence {
		t.Errorf("defaults not applied: %+v", a)
	}
	if a.Workers != 0 {
		t.Errorf("workers not scrubbed: %d", a.Workers)
	}
}

// TestSubstreamDistinct checks replicate substreams never collide over a
// realistic index range, for adjacent root seeds too.
func TestSubstreamDistinct(t *testing.T) {
	seen := make(map[int64]string)
	for _, root := range []int64{0, 1, 2} {
		for i := 0; i < 2000; i++ {
			s := substream(root, i)
			key := fmt.Sprintf("%d:%d", root, i)
			if prev, ok := seen[s]; ok {
				t.Fatalf("substream collision: %s and %s both map to %d", prev, key, s)
			}
			seen[s] = key
		}
	}
}
