package montecarlo

import (
	"reflect"
	"testing"
	"time"

	"accelwall/internal/faultinject"
	"accelwall/internal/leakcheck"
)

// sameOutput compares two results ignoring Config, which records the
// (irrelevant to output) worker count of the run that produced it.
func sameOutput(a, b *Result) bool {
	ca, cb := *a, *b
	ca.Config, cb.Config = Config{}, Config{}
	return reflect.DeepEqual(ca, cb)
}

// TestChaosReplicatePool injects every fault mode at the replicate seam
// across pool widths: panicking and erroring replicates must degrade into
// the Failed count (never kill the pool or deadlock it), delays must not
// change results at all, and the pool must recover fully once the
// injector is removed.
func TestChaosReplicatePool(t *testing.T) {
	ref, err := Run(testConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	modes := []faultinject.Mode{faultinject.ModeError, faultinject.ModePanic, faultinject.ModeDelay}
	for _, workers := range []int{1, 4, 8} {
		for _, mode := range modes {
			t.Run(mode.String()+"/w"+string(rune('0'+workers)), func(t *testing.T) {
				leakcheck.Check(t)
				inj := faultinject.New(23).Set(SiteReplicate, faultinject.Rule{
					Mode: mode, P: 0.2, Delay: 100 * time.Microsecond,
				})
				faultinject.Enable(inj)
				defer faultinject.Disable()

				res, err := Run(testConfig(workers))
				if err != nil {
					t.Fatalf("chaos run errored (pool should absorb replicate faults): %v", err)
				}
				fired := int(inj.Fired(SiteReplicate))
				if fired == 0 {
					t.Fatalf("injector never fired over %d hits", inj.Hits(SiteReplicate))
				}
				switch mode {
				case faultinject.ModeDelay:
					// Delays must be invisible in the output.
					if !sameOutput(res, ref) {
						t.Fatal("delay injection changed the reduced result")
					}
				default:
					// Every fired fault is exactly one failed replicate; the
					// P-based decision depends only on the hit index, so the
					// count is schedule-invariant even though the failing
					// replicate identities are not.
					if res.Failed != fired {
						t.Fatalf("Failed = %d, injector fired %d", res.Failed, fired)
					}
					if res.Replicates+res.Failed != ref.Replicates+ref.Failed {
						t.Fatalf("replicate accounting broken: %d usable + %d failed", res.Replicates, res.Failed)
					}
				}

				faultinject.Disable()
				again, err := Run(testConfig(workers))
				if err != nil {
					t.Fatalf("post-chaos run failed: %v", err)
				}
				if !sameOutput(again, ref) {
					t.Fatal("post-chaos results diverged from reference")
				}
			})
		}
	}
}

// TestChaosAllReplicatesFail drives the failure path past the usable
// threshold: when injected faults kill more than half the replicates the
// run must error cleanly (no partial bands), not hang or panic through.
func TestChaosAllReplicatesFail(t *testing.T) {
	leakcheck.Check(t)
	faultinject.Enable(faultinject.New(1).Set(SiteReplicate, faultinject.Rule{
		Mode: faultinject.ModePanic, Every: 1,
	}))
	defer faultinject.Disable()
	res, err := Run(testConfig(4))
	if err == nil {
		t.Fatalf("run with every replicate panicking succeeded: %+v", res.Config)
	}
}
