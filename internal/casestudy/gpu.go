package casestudy

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"accelwall/internal/csr"
	"accelwall/internal/gains"
	"accelwall/internal/stats"
)

// GPUChip is one graphics processor of the Section IV-B study: a GPU
// microarchitecture implemented on a CMOS node, with the physical
// parameters the CMOS potential model consumes. HighEnd distinguishes the
// flagship parts (opaque markers in Figure 5) from mid/low-end parts
// (translucent markers).
type GPUChip struct {
	Name    string
	Arch    string // microarchitecture family (Tesla, Fermi, Kepler, ...)
	NodeNM  float64
	Year    float64
	DieMM2  float64
	TDPW    float64
	FreqGHz float64
	HighEnd bool
}

// archReturn holds the specialization-return factors of one architecture
// implementation — the quantity Figures 6 and 7 recover. First
// implementations on a new node carry depressed factors ("the first
// architectures to be implemented on a new CMOS node always seem to
// perform worse than their predecessors on the old node"), maturing
// implementations recover, and the 16 nm Pascal lands roughly where the
// 65 nm Tesla started.
type archReturn struct {
	perf float64
	eff  float64
}

// gpuArchReturns maps "Arch@node" keys to their specialization returns.
var gpuArchReturns = map[string]archReturn{
	"Tesla@65":       {perf: 1.00, eff: 1.00},
	"Tesla 2@65":     {perf: 1.08, eff: 1.05},
	"Tesla 2@55":     {perf: 1.02, eff: 1.00}, // node-transition dip
	"Fermi@40":       {perf: 0.85, eff: 0.80}, // node-transition dip
	"Fermi 2@40":     {perf: 1.00, eff: 0.95},
	"TeraScale 2@40": {perf: 0.95, eff: 1.00},
	"GCN 1@28":       {perf: 0.92, eff: 0.95}, // node-transition dip
	"Kepler@28":      {perf: 1.00, eff: 1.10},
	"GCN 2@28":       {perf: 1.05, eff: 1.00},
	"Maxwell 2@28":   {perf: 1.25, eff: 1.45},
	"Pascal@16":      {perf: 1.00, eff: 1.10}, // node-transition dip; ≈ Tesla@65
}

// GPUChips returns the GPU dataset: flagship chips for every architecture
// of Figures 6/7 (2008–2017) plus the mid-range parts that populate the
// translucent markers of Figure 5.
func GPUChips() []GPUChip {
	return []GPUChip{
		{Name: "GTX 280", Arch: "Tesla", NodeNM: 65, Year: 2008.5, DieMM2: 576, TDPW: 236, FreqGHz: 0.60, HighEnd: true},
		{Name: "GTX 285", Arch: "Tesla 2", NodeNM: 65, Year: 2008.8, DieMM2: 520, TDPW: 220, FreqGHz: 0.62, HighEnd: true},
		{Name: "GTX 285B", Arch: "Tesla 2", NodeNM: 55, Year: 2009.2, DieMM2: 470, TDPW: 204, FreqGHz: 0.65, HighEnd: true},
		{Name: "GTX 480", Arch: "Fermi", NodeNM: 40, Year: 2010.2, DieMM2: 529, TDPW: 250, FreqGHz: 0.70, HighEnd: true},
		{Name: "HD 6970", Arch: "TeraScale 2", NodeNM: 40, Year: 2010.6, DieMM2: 389, TDPW: 250, FreqGHz: 0.88, HighEnd: true},
		{Name: "GTX 580", Arch: "Fermi 2", NodeNM: 40, Year: 2011.0, DieMM2: 520, TDPW: 244, FreqGHz: 0.77, HighEnd: true},
		{Name: "GTX 560", Arch: "Fermi 2", NodeNM: 40, Year: 2011.3, DieMM2: 332, TDPW: 150, FreqGHz: 0.81, HighEnd: false},
		{Name: "HD 7970", Arch: "GCN 1", NodeNM: 28, Year: 2012.0, DieMM2: 352, TDPW: 250, FreqGHz: 0.93, HighEnd: true},
		{Name: "GTX 680", Arch: "Kepler", NodeNM: 28, Year: 2012.3, DieMM2: 294, TDPW: 195, FreqGHz: 1.06, HighEnd: true},
		{Name: "GTX 660", Arch: "Kepler", NodeNM: 28, Year: 2012.7, DieMM2: 221, TDPW: 140, FreqGHz: 0.98, HighEnd: false},
		{Name: "GTX 770", Arch: "Kepler", NodeNM: 28, Year: 2013.4, DieMM2: 294, TDPW: 230, FreqGHz: 1.08, HighEnd: true},
		{Name: "R9 290X", Arch: "GCN 2", NodeNM: 28, Year: 2013.8, DieMM2: 438, TDPW: 290, FreqGHz: 1.00, HighEnd: true},
		{Name: "GTX 750Ti", Arch: "Maxwell 2", NodeNM: 28, Year: 2014.2, DieMM2: 148, TDPW: 60, FreqGHz: 1.02, HighEnd: false},
		{Name: "GTX 980", Arch: "Maxwell 2", NodeNM: 28, Year: 2014.7, DieMM2: 398, TDPW: 165, FreqGHz: 1.13, HighEnd: true},
		{Name: "R9 380", Arch: "GCN 2", NodeNM: 28, Year: 2015.4, DieMM2: 359, TDPW: 190, FreqGHz: 0.97, HighEnd: false},
		{Name: "GTX 1080", Arch: "Pascal", NodeNM: 16, Year: 2016.4, DieMM2: 260, TDPW: 180, FreqGHz: 1.33, HighEnd: true},
		{Name: "GTX 1060", Arch: "Pascal", NodeNM: 16, Year: 2016.6, DieMM2: 200, TDPW: 120, FreqGHz: 1.40, HighEnd: false},
	}
}

// archKey returns the "Arch@node" identity of a chip's implementation.
func (c GPUChip) archKey() string { return fmt.Sprintf("%s@%d", c.Arch, int(c.NodeNM)) }

func (c GPUChip) config() gains.Config {
	return gains.Config{NodeNM: c.NodeNM, DieMM2: c.DieMM2, TDPW: c.TDPW, FreqGHz: c.FreqGHz}
}

// gpuModel is the CMOS potential model for the GPU study (default
// calibration: big power-hungry dies with substantial leakage).
func gpuModel() *gains.Model { return gains.NewModel(nil) }

// Fig5App describes one benchmark application of the GPU study, with its
// end-of-period specialization returns. PaperPanel marks the five
// applications Figure 5 plots; the remaining nineteen ("other applications
// show similar trends") participate in the Figures 6/7 relation matrix.
type Fig5App struct {
	Name        string
	FinalCSR    float64 // performance CSR at the end of the six-year span
	FinalCSREff float64 // energy-efficiency CSR at the end of the span
	PaperPanel  bool    // one of the five panels shown in Figure 5
}

// GPUApps returns the full 24-benchmark pool ("we have selected 24 popular
// game benchmarks"). The five Figure 5 panels carry the paper's reported
// final returns; the rest spread over the same 0.95–1.5 band.
func GPUApps() []Fig5App {
	apps := []Fig5App{
		{Name: "Crysis 3 FHD", FinalCSR: 0.95, FinalCSREff: 1.27, PaperPanel: true},
		{Name: "Battlefield 4 FHD", FinalCSR: 1.16, FinalCSREff: 0.99, PaperPanel: true},
		{Name: "Battlefield 4 QHD", FinalCSR: 1.14, FinalCSREff: 1.22, PaperPanel: true},
		{Name: "GTA V FHD", FinalCSR: 1.27, FinalCSREff: 1.20, PaperPanel: true},
		{Name: "GTA V FHD 99th perc.", FinalCSR: 1.44, FinalCSREff: 1.47, PaperPanel: true},
	}
	others := []string{
		"Portal 2 FHD", "Tomb Raider FHD", "BioShock Infinite FHD", "Metro Last Light FHD",
		"Far Cry 4 FHD", "Witcher 3 FHD", "Witcher 3 QHD", "Fallout 4 FHD",
		"Hitman FHD", "Doom FHD", "Overwatch FHD", "Ashes FHD",
		"Civilization VI FHD", "Deus Ex MD FHD", "Total War FHD", "Dirt Rally FHD",
		"Rainbow Six FHD", "Rise of TR QHD", "Shadow of Mordor QHD",
	}
	for i, name := range others {
		// Deterministic spread over the observed 0.95-1.5 CSR band.
		t := float64(i) / float64(len(others)-1)
		apps = append(apps, Fig5App{
			Name:        name,
			FinalCSR:    0.95 + 0.5*t,
			FinalCSREff: 1.0 + 0.45*(1-t),
		})
	}
	return apps
}

// Fig5Apps returns the five plotted applications of Figure 5.
func Fig5Apps() []Fig5App {
	var out []Fig5App
	for _, a := range GPUApps() {
		if a.PaperPanel {
			out = append(out, a)
		}
	}
	return out
}

// wobble derives a deterministic per-(chip, app) measurement perturbation
// in [0.97, 1.03], standing in for benchmark run noise.
func wobble(chip, app string) float64 {
	h := fnv.New32a()
	h.Write([]byte(chip))
	h.Write([]byte{0})
	h.Write([]byte(app))
	return 0.97 + 0.06*float64(h.Sum32()%1000)/999
}

// fig5Span is the benchmark window of Figure 5.
const (
	fig5Start = 2011.0
	fig5End   = 2016.4
)

// csrTrend interpolates an application's specialization return
// geometrically from 1 at the window start to final at the window end.
func csrTrend(final, year float64) float64 {
	t := (year - fig5Start) / (fig5End - fig5Start)
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	return math.Pow(final, t)
}

// FrameRate returns the modeled benchmark result of a chip on an
// application: frames per second for the throughput target, frames per
// joule for the efficiency target. Results compose the physical potential
// ratio against the 2011 baseline GPU with the application's
// specialization-return trend and measurement wobble — which is exactly the
// Equation 2 structure the Figure 5 analysis then recovers.
func FrameRate(m *gains.Model, target gains.Target, chip GPUChip, app Fig5App) (float64, error) {
	chips := GPUChips()
	base := fig5Baseline(chips)
	phys, err := m.Ratio(target, chip.config(), base.config())
	if err != nil {
		return 0, err
	}
	final := app.FinalCSR
	baseValue := 40.0 // fps of the baseline flagship
	if target == gains.TargetEfficiency {
		final = app.FinalCSREff
		baseValue = 0.18 // frames per joule of the baseline flagship
	}
	return baseValue * phys * csrTrend(final, chip.Year) * wobble(chip.Name, app.Name), nil
}

// fig5Baseline returns the oldest chip inside the Figure 5 window — the
// normalization chip ("normalized to the oldest GPU chip evaluated").
func fig5Baseline(chips []GPUChip) GPUChip {
	best := GPUChip{Year: 1e9}
	for _, c := range chips {
		if c.Year >= fig5Start && c.Year < best.Year {
			best = c
		}
	}
	return best
}

// Fig5Point is one GPU's benchmark result within an application series.
type Fig5Point struct {
	GPU     string
	Year    float64
	Rel     float64 // frame rate (or frames/J) relative to the baseline GPU
	CSR     float64
	HighEnd bool
}

// Fig5Series is one panel of Figure 5: an application's GPU results with
// quadratic trend curves for the absolute gain and the CSR.
type Fig5Series struct {
	App       Fig5App
	Target    gains.Target
	Points    []Fig5Point
	TrendRel  stats.Quadratic
	TrendCSR  stats.Quadratic
	TotalGain float64 // final flagship relative gain (the ×N annotation)
	FinalCSR  float64 // final flagship CSR (the ×M annotation)
}

// Fig5 reproduces Figure 5a (throughput) or 5b (energy efficiency): per
// application, the relative gains and CSR of every GPU in the 2011–2017
// window, with quadratic trend fits.
func Fig5(target gains.Target) ([]Fig5Series, error) {
	m := gpuModel()
	chips := GPUChips()
	var window []GPUChip
	for _, c := range chips {
		if c.Year >= fig5Start {
			window = append(window, c)
		}
	}
	sort.Slice(window, func(i, j int) bool { return window[i].Year < window[j].Year })
	var out []Fig5Series
	for _, app := range Fig5Apps() {
		obs := make([]csr.Observation, 0, len(window))
		for _, c := range window {
			v, err := FrameRate(m, target, c, app)
			if err != nil {
				return nil, fmt.Errorf("casestudy: fig5 %s on %s: %w", app.Name, c.Name, err)
			}
			obs = append(obs, csr.Observation{Name: c.Name, Year: c.Year, Chip: c.config(), Gain: v})
		}
		rows, err := csr.Analyze(m, target, obs, 0)
		if err != nil {
			return nil, fmt.Errorf("casestudy: fig5 %s: %w", app.Name, err)
		}
		series := Fig5Series{App: app, Target: target}
		var years, rels, csrs []float64
		for i, r := range rows {
			series.Points = append(series.Points, Fig5Point{
				GPU:     r.Name,
				Year:    r.Year,
				Rel:     r.Gain,
				CSR:     r.CSR,
				HighEnd: window[i].HighEnd,
			})
			years = append(years, r.Year)
			rels = append(rels, r.Gain)
			csrs = append(csrs, r.CSR)
			if window[i].HighEnd {
				series.TotalGain = r.Gain
				series.FinalCSR = r.CSR
			}
		}
		if series.TrendRel, err = stats.FitQuadratic(years, rels); err != nil {
			return nil, fmt.Errorf("casestudy: fig5 %s trend: %w", app.Name, err)
		}
		if series.TrendCSR, err = stats.FitQuadratic(years, csrs); err != nil {
			return nil, fmt.Errorf("casestudy: fig5 %s CSR trend: %w", app.Name, err)
		}
		out = append(out, series)
	}
	return out, nil
}

// appWindow returns the availability window of benchmark app i: games
// enter and leave the review-benchmark rotation over time, so older and
// newer architectures share only overlapping subsets — the reason the
// paper needs the Equation 4 transitive closure.
func appWindow(i int) (from, to float64) {
	return 2005 + 0.4*float64(i), 2011 + 0.4*float64(i)
}

// archAppGains builds the architecture → application gain table feeding
// BuildRelations, using each architecture's flagship chip and the given
// gains model.
func archAppGains(m *gains.Model, target gains.Target) (csr.AppGains, map[string]GPUChip, error) {
	flagships := make(map[string]GPUChip)
	for _, c := range GPUChips() {
		if !c.HighEnd {
			continue
		}
		key := c.archKey()
		if prev, ok := flagships[key]; !ok || c.Year < prev.Year {
			flagships[key] = c
		}
	}
	tesla := flagships["Tesla@65"]
	ag := make(csr.AppGains)
	for key, chip := range flagships {
		ret, ok := gpuArchReturns[key]
		if !ok {
			return nil, nil, fmt.Errorf("casestudy: no specialization return for %s", key)
		}
		factor := ret.perf
		if target == gains.TargetEfficiency {
			factor = ret.eff
		}
		phys, err := m.Ratio(target, chip.config(), tesla.config())
		if err != nil {
			return nil, nil, fmt.Errorf("casestudy: relations for %s: %w", key, err)
		}
		apps := make(map[string]float64)
		for i, app := range GPUApps() {
			from, to := appWindow(i)
			if chip.Year < from || chip.Year > to {
				continue
			}
			apps[app.Name] = 100 / float64(i+1) * phys * factor * wobble(chip.Name, app.Name)
		}
		ag[key] = apps
	}
	return ag, flagships, nil
}

// ArchPoint is one architecture implementation of Figures 6/7: its
// relative gain versus the 65 nm Tesla baseline (recovered through the
// relations matrix) and its specialization return.
type ArchPoint struct {
	Arch    string
	NodeNM  float64
	Year    float64
	RelGain float64
	CSR     float64
}

// ArchScaling reproduces Figure 6 (target = throughput) or Figure 7
// (target = efficiency): per-architecture relative gains from the
// Equations 3/4 relation matrix, and the CSR obtained by dividing out the
// CMOS potential ratio.
func ArchScaling(target gains.Target) ([]ArchPoint, error) {
	return ArchScalingWith(nil, target)
}

// ArchScalingWith is ArchScaling evaluated against a caller-supplied gains
// model (nil selects the study's default), so the Monte Carlo uncertainty
// engine can rerun the study under a refitted budget and jittered scaling
// table.
func ArchScalingWith(m *gains.Model, target gains.Target) ([]ArchPoint, error) {
	if m == nil {
		m = gpuModel()
	}
	ag, flagships, err := archAppGains(m, target)
	if err != nil {
		return nil, err
	}
	rm, err := csr.BuildRelations(ag, 5)
	if err != nil {
		return nil, fmt.Errorf("casestudy: building GPU relations: %w", err)
	}
	tesla := flagships["Tesla@65"]
	var out []ArchPoint
	for key, chip := range flagships {
		rel, err := rm.ChainGain(key, "Tesla@65")
		if err != nil {
			return nil, fmt.Errorf("casestudy: chaining %s: %w", key, err)
		}
		phys, err := m.Ratio(target, chip.config(), tesla.config())
		if err != nil {
			return nil, err
		}
		out = append(out, ArchPoint{
			Arch:    chip.Arch,
			NodeNM:  chip.NodeNM,
			Year:    chip.Year,
			RelGain: rel,
			CSR:     rel / phys,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Year < out[j].Year })
	return out, nil
}
