package casestudy

import (
	"fmt"

	"accelwall/internal/chipdb"
	"accelwall/internal/csr"
	"accelwall/internal/gains"
)

// Miner is one Bitcoin mining chip record (Section IV-D). The performance
// metric is SHA256 hashing throughput per chip area, "as it is a better
// indicator of chip performance than absolute throughput" given how widely
// miner products vary in chip count.
type Miner struct {
	Name       string
	Kind       chipdb.Kind
	Year       float64 // fractional introduction date
	NodeNM     float64
	FreqGHz    float64
	PerfGHsMM2 float64 // GHash/s per mm²
	EffGHsJ    float64 // GHash per joule
}

// Miners returns the mining dataset: one CPU, GPU and FPGA generation plus
// the ASIC progression from 130 nm (late 2012) to 16 nm (2016), modeled on
// the Bitcoin-wiki miner databases the paper scraped. Gain magnitudes match
// the reported aggregates: ASIC performance per area ~600× across ASICs and
// ~600,000× over the baseline CPU miner, with transistor performance
// improving ~300× across ASICs (Figures 1 and 9).
func Miners() []Miner {
	return []Miner{
		{Name: "Athlon64-CPU", Kind: chipdb.CPU, Year: 2009.0, NodeNM: 130, FreqGHz: 2.0, PerfGHsMM2: 8e-6, EffGHsJ: 5e-6},
		{Name: "HD5870-GPU", Kind: chipdb.GPU, Year: 2010.5, NodeNM: 40, FreqGHz: 0.85, PerfGHsMM2: 1e-3, EffGHsJ: 2e-3},
		{Name: "Spartan6-FPGA", Kind: chipdb.FPGA, Year: 2011.3, NodeNM: 45, FreqGHz: 0.20, PerfGHsMM2: 3e-3, EffGHsJ: 1.3e-2},
		{Name: "ASIC-130nm", Kind: chipdb.ASIC, Year: 2012.9, NodeNM: 130, FreqGHz: 0.30, PerfGHsMM2: 0.008, EffGHsJ: 0.060},
		{Name: "ASIC-110nm", Kind: chipdb.ASIC, Year: 2013.1, NodeNM: 110, FreqGHz: 0.282, PerfGHsMM2: 0.016, EffGHsJ: 0.120},
		{Name: "ASIC-55nm", Kind: chipdb.ASIC, Year: 2013.6, NodeNM: 55, FreqGHz: 0.60, PerfGHsMM2: 0.10, EffGHsJ: 0.26},
		{Name: "ASIC-28nm-a", Kind: chipdb.ASIC, Year: 2014.3, NodeNM: 28, FreqGHz: 0.70, PerfGHsMM2: 0.55, EffGHsJ: 0.35},
		{Name: "ASIC-28nm-b", Kind: chipdb.ASIC, Year: 2015.0, NodeNM: 28, FreqGHz: 0.75, PerfGHsMM2: 0.75, EffGHsJ: 0.70},
		{Name: "ASIC-28nm-c", Kind: chipdb.ASIC, Year: 2015.5, NodeNM: 28, FreqGHz: 0.80, PerfGHsMM2: 0.95, EffGHsJ: 0.95},
		{Name: "ASIC-16nm-a", Kind: chipdb.ASIC, Year: 2016.0, NodeNM: 16, FreqGHz: 1.20, PerfGHsMM2: 3.0, EffGHsJ: 1.25},
		{Name: "ASIC-16nm-b", Kind: chipdb.ASIC, Year: 2016.5, NodeNM: 16, FreqGHz: 1.40, PerfGHsMM2: 4.8, EffGHsJ: 1.40},
	}
}

// observation converts a miner to a CSR observation for the given target.
// Die size and TDP are irrelevant to the per-area device-potential model
// but must be positive for validation; nominal values are used.
func (m Miner) observation(target gains.Target) csr.Observation {
	gain := m.PerfGHsMM2
	if target == gains.TargetEfficiency {
		gain = m.EffGHsJ
	}
	return csr.Observation{
		Name: m.Name,
		Year: m.Year,
		Chip: gains.Config{NodeNM: m.NodeNM, DieMM2: 25, TDPW: 50, FreqGHz: m.FreqGHz},
		Gain: gain,
	}
}

// BitcoinObservations returns the full dataset as CSR observations for the
// given target, in chronological order.
func BitcoinObservations(target gains.Target) []csr.Observation {
	miners := Miners()
	out := make([]csr.Observation, 0, len(miners))
	for _, m := range miners {
		out = append(out, m.observation(target))
	}
	return out
}

// Fig1Row is one point of Figure 1: a mining ASIC's relative performance,
// the transistor-performance curve (CMOS-driven potential), and the CSR.
type Fig1Row struct {
	Name                  string
	Year                  float64
	NodeNM                float64
	RelPerformance        float64 // normalized to the 130 nm ASIC
	TransistorPerformance float64 // CMOS potential, normalized likewise
	CSR                   float64
}

// Fig1 reproduces the Bitcoin ASIC evolution of Figure 1: performance per
// area, transistor performance, and chip-specialization return, normalized
// to the first (130 nm) ASIC.
func Fig1() ([]Fig1Row, error) {
	miners := Miners()
	var obs []csr.Observation
	var meta []Miner
	for _, m := range miners {
		if m.Kind == chipdb.ASIC {
			obs = append(obs, m.observation(gains.TargetThroughput))
			meta = append(meta, m)
		}
	}
	rows, err := csr.Analyze(DevicePotential{}, gains.TargetThroughput, obs, 0)
	if err != nil {
		return nil, fmt.Errorf("casestudy: fig1: %w", err)
	}
	out := make([]Fig1Row, len(rows))
	for i, r := range rows {
		out[i] = Fig1Row{
			Name:                  r.Name,
			Year:                  r.Year,
			NodeNM:                meta[i].NodeNM,
			RelPerformance:        r.Gain,
			TransistorPerformance: r.PhysicalGain,
			CSR:                   r.CSR,
		}
	}
	return out, nil
}

// Fig9Row is one chip of Figure 9: relative gain and CSR versus the
// baseline CPU miner, for one target function.
type Fig9Row struct {
	Name    string
	Kind    chipdb.Kind
	Year    float64
	NodeNM  float64
	RelGain float64
	CSR     float64
}

// Fig9 reproduces the cross-platform mining study of Figure 9 for the given
// target function (performance per area or energy efficiency), normalized
// to the AMD Athlon 64 CPU miner.
func Fig9(target gains.Target) ([]Fig9Row, error) {
	return Fig9With(DevicePotential{}, target)
}

// Fig9With is Fig9 evaluated against a caller-supplied device-potential
// model, so the Monte Carlo uncertainty engine can rerun the study under a
// jittered scaling table.
func Fig9With(dev DevicePotential, target gains.Target) ([]Fig9Row, error) {
	obs := BitcoinObservations(target)
	rows, err := csr.Analyze(dev, target, obs, 0)
	if err != nil {
		return nil, fmt.Errorf("casestudy: fig9: %w", err)
	}
	miners := Miners()
	out := make([]Fig9Row, len(rows))
	for i, r := range rows {
		out[i] = Fig9Row{
			Name:    r.Name,
			Kind:    miners[i].Kind,
			Year:    r.Year,
			NodeNM:  miners[i].NodeNM,
			RelGain: r.Gain,
			CSR:     r.CSR,
		}
	}
	return out, nil
}

// ASICBoostYear is when the ASICBoost optimization became available:
// Section IV-E cites it as the lone algorithmic innovation in the confined
// Bitcoin domain, "a one-time 20% improvement by parallelizing the inner
// and outer loops in the algorithm".
const ASICBoostYear = 2016.0

// asicBoostFactor is the one-time improvement ASICBoost delivers.
const asicBoostFactor = 1.20

// Fig1ASICBoost replays the Figure 1 analysis in a counterfactual where
// every miner introduced from ASICBoostYear onward adopts ASICBoost. The
// physical potential is untouched, so the entire 20% lands in CSR — once.
// This extension illustrates the paper's point that algorithmic innovation
// in a confined domain shifts the specialization return by a constant
// factor rather than changing its growth rate.
func Fig1ASICBoost() ([]Fig1Row, error) {
	rows, err := Fig1()
	if err != nil {
		return nil, err
	}
	for i := range rows {
		if rows[i].Year >= ASICBoostYear {
			rows[i].RelPerformance *= asicBoostFactor
			rows[i].CSR *= asicBoostFactor
		}
	}
	return rows, nil
}
