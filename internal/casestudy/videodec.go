package casestudy

import (
	"fmt"

	"accelwall/internal/csr"
	"accelwall/internal/gains"
)

// Decoder is one published video decoder ASIC (Section IV-A, Figure 4),
// modeled on the twelve ISSCC/VLSI/JSSC/ESSCIRC chips the paper evaluates
// from 2006 (180 nm, H.264 HDTV) to 2017 (40 nm, 8K HEVC).
type Decoder struct {
	Pub     string // publication venue + year label, e.g. "ISSCC2006"
	Year    float64
	NodeNM  float64
	DieMM2  float64
	FreqGHz float64
	PowerW  float64
	MPixS   float64 // decoding throughput, MPixels/s
	MPixJ   float64 // energy efficiency, MPixels/J
	// Hardware budget (Figure 4b). Zero values mean the publication did
	// not disclose on-chip SRAM sizes; such chips are excluded from the
	// hardware plot, as in the paper.
	CoreKGates float64
	SRAMKb     float64
}

// Transistors estimates the chip's transistor count from its disclosed
// NAND-gate and SRAM budgets (4 transistors per gate, 6T bit cells),
// following the estimation procedure of Figure 4b.
func (d Decoder) Transistors() float64 {
	return d.CoreKGates*1e3*4 + d.SRAMKb*1e3*6
}

// HasHardwareData reports whether the publication disclosed enough to
// appear in the Figure 4b hardware-budget panel.
func (d Decoder) HasHardwareData() bool { return d.CoreKGates > 0 && d.SRAMKb > 0 }

// Decoders returns the video decoder dataset in chronological order. The
// gain magnitudes reproduce the paper's aggregates: up to 64× decoding
// throughput and 34× energy efficiency over the ISSCC2006 baseline, with
// specialization returns that peak mildly above 1 mid-decade and fall
// below 1 for the best-performing chips.
func Decoders() []Decoder {
	return []Decoder{
		{Pub: "ISSCC2006", Year: 2006, NodeNM: 180, DieMM2: 7.7, FreqGHz: 0.10, PowerW: 0.35, MPixS: 30, MPixJ: 85, CoreKGates: 160, SRAMKb: 4.5},
		{Pub: "ISSCC2007", Year: 2007, NodeNM: 130, DieMM2: 7.0, FreqGHz: 0.12, PowerW: 0.32, MPixS: 75, MPixJ: 238, CoreKGates: 252, SRAMKb: 16},
		{Pub: "VLSI2009", Year: 2009, NodeNM: 90, DieMM2: 6.5, FreqGHz: 0.15, PowerW: 0.38, MPixS: 180, MPixJ: 480, CoreKGates: 410, SRAMKb: 32},
		{Pub: "ISSCC2010", Year: 2010, NodeNM: 65, DieMM2: 6.0, FreqGHz: 0.20, PowerW: 0.51, MPixS: 380, MPixJ: 750, CoreKGates: 600, SRAMKb: 80},
		{Pub: "JSSC2011", Year: 2011, NodeNM: 65, DieMM2: 8.0, FreqGHz: 0.22, PowerW: 0.65, MPixS: 510, MPixJ: 780, CoreKGates: 880, SRAMKb: 160},
		{Pub: "ISSCC2011", Year: 2011.5, NodeNM: 65, DieMM2: 9.0, FreqGHz: 0.25, PowerW: 0.75, MPixS: 600, MPixJ: 800, CoreKGates: 1000, SRAMKb: 250},
		{Pub: "ISSCC2012", Year: 2012, NodeNM: 40, DieMM2: 9.0, FreqGHz: 0.28, PowerW: 0.87, MPixS: 960, MPixJ: 1100, CoreKGates: 1400, SRAMKb: 320},
		{Pub: "ISSCC2013", Year: 2013, NodeNM: 40, DieMM2: 12, FreqGHz: 0.30, PowerW: 1.04, MPixS: 1200, MPixJ: 1150, CoreKGates: 1800, SRAMKb: 500},
		{Pub: "ESSCIRC2014", Year: 2014, NodeNM: 28, DieMM2: 5.0, FreqGHz: 0.30, PowerW: 0.74, MPixS: 1260, MPixJ: 1700},
		{Pub: "JSSC2016", Year: 2016, NodeNM: 28, DieMM2: 6.0, FreqGHz: 0.35, PowerW: 0.74, MPixS: 1500, MPixJ: 2040, CoreKGates: 2500, SRAMKb: 800},
		{Pub: "ESSCIRC2016", Year: 2016.5, NodeNM: 28, DieMM2: 8.0, FreqGHz: 0.35, PowerW: 0.57, MPixS: 1650, MPixJ: 2890},
		{Pub: "JSSC2017", Year: 2017, NodeNM: 40, DieMM2: 20, FreqGHz: 0.40, PowerW: 0.69, MPixS: 1920, MPixJ: 1450, CoreKGates: 4000, SRAMKb: 1400},
	}
}

// VideoLeakShare is the leakage calibration of the decoder study. Fixed-
// function decoder ASICs are dynamic-power dominated, so it is far below
// the general-purpose default of package gains.
const VideoLeakShare = 0.05

// videoModel returns the gains model used for the decoder study.
func videoModel() *gains.Model {
	m := gains.NewModel(nil)
	m.LeakShare = VideoLeakShare
	return m
}

// decoderObservations converts the dataset for the given target.
func decoderObservations(target gains.Target) []csr.Observation {
	decs := Decoders()
	out := make([]csr.Observation, 0, len(decs))
	for _, d := range decs {
		gain := d.MPixS
		if target == gains.TargetEfficiency {
			gain = d.MPixJ
		}
		// Decoder chips run far below any thermal envelope, so the budget
		// model's TDP input is a nominal 5 W ceiling (the paper similarly
		// adopts a 7 W budget "10x higher than the highest power measure");
		// the measured power enters only through the MPixels/J gains.
		out = append(out, csr.Observation{
			Name: d.Pub,
			Year: d.Year,
			Chip: gains.Config{NodeNM: d.NodeNM, DieMM2: d.DieMM2, TDPW: 5, FreqGHz: d.FreqGHz},
			Gain: gain,
		})
	}
	return out
}

// Fig4Row is one decoder of Figure 4a (throughput) or 4c (efficiency):
// relative gain and CSR versus the ISSCC2006 baseline.
type Fig4Row struct {
	Pub     string
	Year    float64
	NodeNM  float64
	RelGain float64
	CSR     float64
}

// Fig4 reproduces Figure 4a (target = throughput: MPixels/s scaling) or
// Figure 4c (target = efficiency: MPixels/J scaling) with per-chip CSR.
func Fig4(target gains.Target) ([]Fig4Row, error) {
	return Fig4With(nil, target)
}

// Fig4With is Fig4 evaluated against a caller-supplied gains model (nil
// selects the study's default), so the Monte Carlo uncertainty engine can
// rerun the study under a refitted budget and jittered scaling table. The
// model's LeakShare should be VideoLeakShare to match the study's
// calibration.
func Fig4With(m *gains.Model, target gains.Target) ([]Fig4Row, error) {
	if m == nil {
		m = videoModel()
	}
	obs := decoderObservations(target)
	rows, err := csr.Analyze(m, target, obs, 0)
	if err != nil {
		return nil, fmt.Errorf("casestudy: fig4: %w", err)
	}
	decs := Decoders()
	out := make([]Fig4Row, len(rows))
	for i, r := range rows {
		out[i] = Fig4Row{Pub: r.Name, Year: r.Year, NodeNM: decs[i].NodeNM, RelGain: r.Gain, CSR: r.CSR}
	}
	return out, nil
}

// Fig4bRow is one decoder of the hardware-budget panel (Figure 4b):
// relative transistor count (versus the baseline chip) and frequency.
type Fig4bRow struct {
	Pub            string
	NodeNM         float64
	RelTransistors float64
	FreqMHz        float64
}

// Fig4b reproduces the Figure 4b hardware panel. Chips that did not
// disclose SRAM sizes are omitted, as in the paper ("not all works are
// presented ... since some works did not specify the size of on-chip
// SRAMs").
func Fig4b() ([]Fig4bRow, error) {
	decs := Decoders()
	base := decs[0]
	if !base.HasHardwareData() {
		return nil, fmt.Errorf("casestudy: fig4b: baseline %s lacks hardware data", base.Pub)
	}
	var out []Fig4bRow
	for _, d := range decs {
		if !d.HasHardwareData() {
			continue
		}
		out = append(out, Fig4bRow{
			Pub:            d.Pub,
			NodeNM:         d.NodeNM,
			RelTransistors: d.Transistors() / base.Transistors(),
			FreqMHz:        d.FreqGHz * 1000,
		})
	}
	return out, nil
}
