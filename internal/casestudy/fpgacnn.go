package casestudy

import (
	"fmt"

	"accelwall/internal/csr"
	"accelwall/internal/gains"
)

// CNNModel identifies which network an FPGA implementation accelerates.
type CNNModel int

// The two ImageNet-milestone models of Section IV-C.
const (
	AlexNet CNNModel = iota
	VGG16
)

// String returns the model name.
func (m CNNModel) String() string {
	if m == VGG16 {
		return "VGG-16"
	}
	return "AlexNet"
}

// FPGAImpl is one published FPGA CNN implementation (Figure 8), modeled on
// the FPGA/ISCA/ICCAD/FPL/FCCM papers of 2015–2018, all on 28 nm or 20 nm
// FPGAs.
type FPGAImpl struct {
	Pub     string
	Model   CNNModel
	Year    float64
	NodeNM  float64 // 28 or 20
	FreqGHz float64
	GOPS    float64 // throughput, giga-operations per second
	GOPSJ   float64 // energy efficiency, GOPS per watt = GOP per joule
	// Resource utilization percentages (Figure 8b).
	UtilLUT  float64
	UtilDSP  float64
	UtilBRAM float64
}

// Utilization returns the mean fraction of FPGA resources the design uses.
// The paper attributes the best designs' gains to "better physical budget
// (higher utilization of FPGA resources)", so utilization belongs to the
// physical layer, not the specialization stack.
func (f FPGAImpl) Utilization() float64 {
	return (f.UtilLUT + f.UtilDSP + f.UtilBRAM) / 300
}

// fpgaDie returns the die size of the era's typical CNN-capable FPGA.
func fpgaDie(nodeNM float64) float64 {
	if nodeNM <= 20 {
		return 560 // Arria 10 / UltraScale class
	}
	return 600 // Virtex-7 / Stratix V class
}

// Config folds resource utilization into the CMOS potential input as
// effective die area: an FPGA design only "owns" the fabric it instantiates.
func (f FPGAImpl) Config() gains.Config {
	return gains.Config{
		NodeNM:  f.NodeNM,
		DieMM2:  fpgaDie(f.NodeNM) * f.Utilization(),
		TDPW:    35,
		FreqGHz: f.FreqGHz,
	}
}

// FPGAImpls returns the CNN implementation dataset for one model, in
// chronological order. Aggregates match the paper: AlexNet throughput and
// efficiency improve ~24× and ~14×; VGG-16 — whose model is 3× larger and
// needs ~20× the operations per image — improves only ~9× and ~7×. CSR
// rises across the series (CNNs are an emerging domain where algorithmic
// innovation still pays) but is flat-to-lower for the best chips, whose
// edge is higher resource utilization.
func FPGAImpls(model CNNModel) []FPGAImpl {
	if model == VGG16 {
		return []FPGAImpl{
			{Pub: "FPGA2016", Model: VGG16, Year: 2016.0, NodeNM: 28, FreqGHz: 0.10, GOPS: 80, GOPSJ: 4.0, UtilLUT: 55, UtilDSP: 50, UtilBRAM: 45},
			{Pub: "FPGA2016b", Model: VGG16, Year: 2016.1, NodeNM: 28, FreqGHz: 0.11, GOPS: 130, GOPSJ: 5.8, UtilLUT: 60, UtilDSP: 55, UtilBRAM: 50},
			{Pub: "FPGA2016c", Model: VGG16, Year: 2016.2, NodeNM: 28, FreqGHz: 0.12, GOPS: 185, GOPSJ: 7.6, UtilLUT: 65, UtilDSP: 60, UtilBRAM: 55},
			{Pub: "ICCAD2016", Model: VGG16, Year: 2016.8, NodeNM: 28, FreqGHz: 0.13, GOPS: 260, GOPSJ: 9.8, UtilLUT: 70, UtilDSP: 65, UtilBRAM: 60},
			{Pub: "FCCM2017", Model: VGG16, Year: 2017.3, NodeNM: 20, FreqGHz: 0.14, GOPS: 360, GOPSJ: 13.0, UtilLUT: 62, UtilDSP: 60, UtilBRAM: 58},
			{Pub: "FPGA2017", Model: VGG16, Year: 2017.0, NodeNM: 20, FreqGHz: 0.15, GOPS: 430, GOPSJ: 16.0, UtilLUT: 66, UtilDSP: 65, UtilBRAM: 64},
			{Pub: "FPGA2017b", Model: VGG16, Year: 2017.1, NodeNM: 20, FreqGHz: 0.15, GOPS: 520, GOPSJ: 19.5, UtilLUT: 72, UtilDSP: 70, UtilBRAM: 68},
			{Pub: "FPGA2017c", Model: VGG16, Year: 2017.2, NodeNM: 20, FreqGHz: 0.16, GOPS: 600, GOPSJ: 23.0, UtilLUT: 74, UtilDSP: 72, UtilBRAM: 70},
			{Pub: "FPGA2018", Model: VGG16, Year: 2018.0, NodeNM: 20, FreqGHz: 0.15, GOPS: 720, GOPSJ: 28.0, UtilLUT: 72, UtilDSP: 70, UtilBRAM: 68},
		}
	}
	return []FPGAImpl{
		{Pub: "FPGA2015", Model: AlexNet, Year: 2015.0, NodeNM: 28, FreqGHz: 0.10, GOPS: 40, GOPSJ: 2.0, UtilLUT: 37, UtilDSP: 35, UtilBRAM: 33},
		{Pub: "FPGA2016", Model: AlexNet, Year: 2016.0, NodeNM: 28, FreqGHz: 0.12, GOPS: 108, GOPSJ: 4.6, UtilLUT: 47, UtilDSP: 45, UtilBRAM: 43},
		{Pub: "FPGA2016b", Model: AlexNet, Year: 2016.1, NodeNM: 28, FreqGHz: 0.15, GOPS: 223, GOPSJ: 7.8, UtilLUT: 57, UtilDSP: 55, UtilBRAM: 53},
		{Pub: "FPL2016", Model: AlexNet, Year: 2016.6, NodeNM: 20, FreqGHz: 0.20, GOPS: 444, GOPSJ: 12.0, UtilLUT: 57, UtilDSP: 55, UtilBRAM: 53},
		{Pub: "ICCAD2016", Model: AlexNet, Year: 2016.8, NodeNM: 28, FreqGHz: 0.15, GOPS: 308, GOPSJ: 9.5, UtilLUT: 62, UtilDSP: 60, UtilBRAM: 58},
		{Pub: "FPGA2017", Model: AlexNet, Year: 2017.0, NodeNM: 20, FreqGHz: 0.24, GOPS: 838, GOPSJ: 20.0, UtilLUT: 72, UtilDSP: 70, UtilBRAM: 68},
		{Pub: "FPGA2017b", Model: AlexNet, Year: 2017.1, NodeNM: 20, FreqGHz: 0.25, GOPS: 861, GOPSJ: 24.0, UtilLUT: 77, UtilDSP: 75, UtilBRAM: 73},
		{Pub: "FPGA2017w", Model: AlexNet, Year: 2017.2, NodeNM: 20, FreqGHz: 0.28, GOPS: 960, GOPSJ: 28.0, UtilLUT: 82, UtilDSP: 80, UtilBRAM: 78},
		{Pub: "ISCA2017", Model: AlexNet, Year: 2017.4, NodeNM: 28, FreqGHz: 0.17, GOPS: 474, GOPSJ: 13.5, UtilLUT: 72, UtilDSP: 70, UtilBRAM: 68},
		{Pub: "ISCA2017b", Model: AlexNet, Year: 2017.5, NodeNM: 28, FreqGHz: 0.20, GOPS: 858, GOPSJ: 16.0, UtilLUT: 77, UtilDSP: 75, UtilBRAM: 73},
		{Pub: "ISCA2017c", Model: AlexNet, Year: 2017.5, NodeNM: 28, FreqGHz: 0.18, GOPS: 520, GOPSJ: 14.0, UtilLUT: 74, UtilDSP: 72, UtilBRAM: 70},
	}
}

// Fig8Row is one implementation of Figure 8a (throughput) or 8c
// (efficiency): relative gain and CSR versus the series' first entry.
type Fig8Row struct {
	Pub     string
	Model   CNNModel
	Year    float64
	NodeNM  float64
	RelGain float64
	CSR     float64
}

// Fig8 reproduces Figure 8a/8c for one CNN model and target function.
func Fig8(model CNNModel, target gains.Target) ([]Fig8Row, error) {
	impls := FPGAImpls(model)
	obs := make([]csr.Observation, 0, len(impls))
	for _, f := range impls {
		gain := f.GOPS
		if target == gains.TargetEfficiency {
			gain = f.GOPSJ
		}
		obs = append(obs, csr.Observation{Name: f.Pub, Year: f.Year, Chip: f.Config(), Gain: gain})
	}
	rows, err := csr.Analyze(gains.NewModel(nil), target, obs, 0)
	if err != nil {
		return nil, fmt.Errorf("casestudy: fig8 %v: %w", model, err)
	}
	out := make([]Fig8Row, len(rows))
	for i, r := range rows {
		out[i] = Fig8Row{Pub: r.Name, Model: model, Year: r.Year, NodeNM: impls[i].NodeNM, RelGain: r.Gain, CSR: r.CSR}
	}
	return out, nil
}

// Fig8bRow is one implementation of the resource panel (Figure 8b).
type Fig8bRow struct {
	Pub      string
	Model    CNNModel
	UtilLUT  float64
	UtilDSP  float64
	UtilBRAM float64
	FreqMHz  float64
}

// Fig8b reproduces the resource-utilization and frequency panel of
// Figure 8b for one CNN model.
func Fig8b(model CNNModel) []Fig8bRow {
	impls := FPGAImpls(model)
	out := make([]Fig8bRow, 0, len(impls))
	for _, f := range impls {
		out = append(out, Fig8bRow{
			Pub:      f.Pub,
			Model:    model,
			UtilLUT:  f.UtilLUT,
			UtilDSP:  f.UtilDSP,
			UtilBRAM: f.UtilBRAM,
			FreqMHz:  f.FreqGHz * 1000,
		})
	}
	return out
}
