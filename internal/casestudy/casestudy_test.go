package casestudy

import (
	"math"
	"testing"

	"accelwall/internal/chipdb"
	"accelwall/internal/gains"
)

func TestDevicePotentialRatio(t *testing.T) {
	dp := DevicePotential{}
	a := gains.Config{NodeNM: 16, DieMM2: 25, TDPW: 50, FreqGHz: 1.4}
	b := gains.Config{NodeNM: 130, DieMM2: 25, TDPW: 50, FreqGHz: 0.3}
	r, err := dp.Ratio(gains.TargetThroughput, a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Density (130/16)² ≈ 66× times frequency 4.67× ≈ 308×: the Figure 1
	// transistor-performance magnitude.
	if r < 280 || r < 0 || r > 340 {
		t.Errorf("device potential ratio = %g, want ~308", r)
	}
	inv, err := dp.Ratio(gains.TargetThroughput, b, a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r*inv-1) > 1e-9 {
		t.Error("device potential ratio not reciprocal")
	}
	eff, err := dp.Ratio(gains.TargetEfficiency, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if eff <= 1 {
		t.Errorf("16nm should beat 130nm on energy, got %g", eff)
	}
	if _, err := dp.Ratio(gains.TargetThroughput, gains.Config{NodeNM: 999, FreqGHz: 1}, b); err == nil {
		t.Error("bad node should error")
	}
	if _, err := dp.Ratio(gains.TargetThroughput, a, gains.Config{NodeNM: 999, FreqGHz: 1}); err == nil {
		t.Error("bad node (denominator) should error")
	}
	if _, err := dp.Ratio(gains.TargetThroughput, gains.Config{NodeNM: 45}, b); err == nil {
		t.Error("zero frequency should error")
	}
}

func TestDomainStrings(t *testing.T) {
	if len(Domains()) != 4 {
		t.Fatalf("want 4 case-study domains")
	}
	for _, d := range Domains() {
		if d.String() == "" {
			t.Errorf("domain %d has empty name", int(d))
		}
	}
	if Domain(9).String() != "Domain(9)" {
		t.Errorf("unknown domain = %q", Domain(9).String())
	}
}

// Figure 1 headline: ASIC performance/area improves ~600×, transistor
// performance ~300×, so CSR lands near 2× — and CSR stops improving over
// the final two years.
func TestFig1Headline(t *testing.T) {
	rows, err := Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 6 {
		t.Fatalf("Fig1 has %d ASICs, want the full progression", len(rows))
	}
	first, last := rows[0], rows[len(rows)-1]
	if first.RelPerformance != 1 || first.TransistorPerformance != 1 {
		t.Errorf("baseline row not normalized: %+v", first)
	}
	if last.RelPerformance < 480 || last.RelPerformance > 720 {
		t.Errorf("final relative performance = %.0f×, want ~600×", last.RelPerformance)
	}
	if last.TransistorPerformance < 260 || last.TransistorPerformance > 360 {
		t.Errorf("final transistor performance = %.0f×, want ~307×", last.TransistorPerformance)
	}
	if last.CSR < 1.4 || last.CSR > 2.6 {
		t.Errorf("final CSR = %.2f×, want ~2×", last.CSR)
	}
	// CSR flat over the last two years: no point after 2014.5 exceeds
	// twice any other in that window.
	var lateMin, lateMax float64 = math.Inf(1), 0
	for _, r := range rows {
		if r.Year >= 2014.5 {
			lateMin = math.Min(lateMin, r.CSR)
			lateMax = math.Max(lateMax, r.CSR)
		}
	}
	if lateMax/lateMin > 2.3 {
		t.Errorf("late-period CSR swings %0.2f–%0.2f; paper reports no improvement", lateMin, lateMax)
	}
}

// Equation 1 invariant on the Bitcoin rows.
func TestFig1EquationOne(t *testing.T) {
	rows, err := Fig1()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if math.Abs(r.CSR*r.TransistorPerformance-r.RelPerformance) > 1e-9*r.RelPerformance {
			t.Errorf("%s: CSR × phys != gain", r.Name)
		}
	}
}

// Figure 9 headlines: ASICs beat the CPU by ~600,000× in performance per
// area; platform transitions deliver the non-recurring CSR boosts; the
// energy-efficiency series shows the two CSR regions with a sharp decline
// between them.
func TestFig9Perf(t *testing.T) {
	rows, err := Fig9(gains.TargetThroughput)
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]Fig9Row, len(rows))
	for _, r := range rows {
		byName[r.Name] = r
	}
	best := rows[len(rows)-1]
	if best.RelGain < 4e5 || best.RelGain > 8e5 {
		t.Errorf("best ASIC vs CPU = %.0f×, want ~600,000×", best.RelGain)
	}
	// Platform transitions (CPU->GPU->FPGA->ASIC) each jump CSR.
	cpu := byName["Athlon64-CPU"]
	gpu := byName["HD5870-GPU"]
	fpga := byName["Spartan6-FPGA"]
	asic := byName["ASIC-130nm"]
	if !(cpu.CSR < gpu.CSR && gpu.CSR < fpga.CSR && fpga.CSR < asic.CSR) {
		t.Errorf("platform CSR ladder broken: CPU %.2g GPU %.2g FPGA %.2g ASIC %.2g",
			cpu.CSR, gpu.CSR, fpga.CSR, asic.CSR)
	}
}

func TestFig9EfficiencyRegions(t *testing.T) {
	rows, err := Fig9(gains.TargetEfficiency)
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]Fig9Row, len(rows))
	for _, r := range rows {
		byName[r.Name] = r
	}
	// Region 1: CSR improves across the early (130 nm -> 110 nm) ASICs.
	if byName["ASIC-110nm"].CSR <= byName["ASIC-130nm"].CSR {
		t.Error("region 1: early ASIC CSR should improve")
	}
	// Sharp decline at the 110 nm -> 28 nm transition.
	if byName["ASIC-28nm-a"].CSR >= byName["ASIC-110nm"].CSR*0.6 {
		t.Errorf("no sharp CSR decline at the node jump: %.2f vs %.2f",
			byName["ASIC-28nm-a"].CSR, byName["ASIC-110nm"].CSR)
	}
	// Region 2: CSR improves again across the modern ASICs.
	if byName["ASIC-28nm-c"].CSR <= byName["ASIC-28nm-a"].CSR {
		t.Error("region 2: modern ASIC CSR should improve")
	}
}

// Figure 4 headlines: up to 64× decoding throughput and 34× energy
// efficiency, while CSR never exceeds ~1.5 and is below 1 for the
// best-performing chips.
func TestFig4Throughput(t *testing.T) {
	rows, err := Fig4(gains.TargetThroughput)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("Fig4 has %d decoders, want 12", len(rows))
	}
	best := rows[0]
	for _, r := range rows {
		if r.RelGain > best.RelGain {
			best = r
		}
		if r.CSR > 1.6 {
			t.Errorf("%s: CSR %.2f exceeds the ~1.5 ceiling", r.Pub, r.CSR)
		}
	}
	if best.RelGain < 55 || best.RelGain > 75 {
		t.Errorf("best throughput gain = %.0f×, want ~64×", best.RelGain)
	}
	if best.CSR >= 1 {
		t.Errorf("best decoder CSR = %.2f, paper reports < 1", best.CSR)
	}
}

func TestFig4Efficiency(t *testing.T) {
	rows, err := Fig4(gains.TargetEfficiency)
	if err != nil {
		t.Fatal(err)
	}
	best := rows[0]
	for _, r := range rows {
		if r.RelGain > best.RelGain {
			best = r
		}
	}
	if best.RelGain < 28 || best.RelGain > 40 {
		t.Errorf("best efficiency gain = %.0f×, want ~34×", best.RelGain)
	}
	for _, r := range rows {
		if r.CSR > 1.6 {
			t.Errorf("%s: efficiency CSR %.2f exceeds the ~1.5 ceiling", r.Pub, r.CSR)
		}
	}
}

func TestFig4b(t *testing.T) {
	rows, err := Fig4b()
	if err != nil {
		t.Fatal(err)
	}
	// Two publications withheld SRAM sizes.
	if len(rows) != 10 {
		t.Fatalf("Fig4b has %d chips, want 10 (two withheld SRAM data)", len(rows))
	}
	var last Fig4bRow
	for _, r := range rows {
		if r.Pub == "JSSC2017" {
			last = r
		}
	}
	// "JSSC2017 has ~36× more transistors".
	if last.RelTransistors < 30 || last.RelTransistors > 42 {
		t.Errorf("JSSC2017 relative transistors = %.1f×, want ~36×", last.RelTransistors)
	}
	if rows[0].RelTransistors != 1 {
		t.Errorf("baseline relative transistors = %g, want 1", rows[0].RelTransistors)
	}
}

// Figure 5 headlines: six years of GPUs improve frame rates 4–6× and
// efficiency 4.5–7.5×, but CSR stays around 1 (0.95–1.47).
func TestFig5Throughput(t *testing.T) {
	series, err := Fig5(gains.TargetThroughput)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 5 {
		t.Fatalf("Fig5 has %d apps, want 5", len(series))
	}
	for _, s := range series {
		if len(s.Points) < 10 {
			t.Errorf("%s: only %d GPUs", s.App.Name, len(s.Points))
		}
		if s.TotalGain < 3.5 || s.TotalGain > 7.5 {
			t.Errorf("%s: total gain %.2f×, want 4–6×", s.App.Name, s.TotalGain)
		}
		if s.FinalCSR < 0.8 || s.FinalCSR > 1.7 {
			t.Errorf("%s: final CSR %.2f, want ~1 (0.95–1.44)", s.App.Name, s.FinalCSR)
		}
		// Within each app the final CSR should land near its target.
		if math.Abs(s.FinalCSR-s.App.FinalCSR) > 0.15 {
			t.Errorf("%s: final CSR %.2f, target %.2f", s.App.Name, s.FinalCSR, s.App.FinalCSR)
		}
		// The quadratic trend exists and explains the data reasonably.
		if s.TrendRel.R2 < 0.6 {
			t.Errorf("%s: frame-rate trend R² = %.2f", s.App.Name, s.TrendRel.R2)
		}
	}
}

func TestFig5Efficiency(t *testing.T) {
	series, err := Fig5(gains.TargetEfficiency)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range series {
		if s.TotalGain < 3.5 || s.TotalGain > 8.5 {
			t.Errorf("%s: efficiency gain %.2f×, want 4.5–7.5×", s.App.Name, s.TotalGain)
		}
		if math.Abs(s.FinalCSR-s.App.FinalCSREff) > 0.2 {
			t.Errorf("%s: final efficiency CSR %.2f, target %.2f", s.App.Name, s.FinalCSR, s.App.FinalCSREff)
		}
	}
}

// Figures 6/7 headlines: overall frame-rate gains reach 13–16× while CSR
// stays within 1.0–1.6; first architectures on a new node dip below their
// predecessors; Pascal's CSR roughly equals Tesla's.
func TestFig6ArchScaling(t *testing.T) {
	points, err := ArchScaling(gains.TargetThroughput)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 11 {
		t.Fatalf("Fig6 has %d architecture points, want 11", len(points))
	}
	byKey := make(map[string]ArchPoint)
	for _, p := range points {
		byKey[p.Arch+"@"+itoa(int(p.NodeNM))] = p
	}
	tesla := byKey["Tesla@65"]
	pascal := byKey["Pascal@16"]
	if tesla.RelGain != 1 {
		t.Errorf("Tesla baseline gain = %g, want 1", tesla.RelGain)
	}
	if pascal.RelGain < 12 || pascal.RelGain > 18 {
		t.Errorf("Pascal gain = %.1f×, want 13–16×", pascal.RelGain)
	}
	// CSR(Pascal@16nm) ≈ CSR(Tesla@65nm).
	if math.Abs(pascal.CSR-tesla.CSR) > 0.25 {
		t.Errorf("Pascal CSR %.2f should roughly equal Tesla's %.2f", pascal.CSR, tesla.CSR)
	}
	// Node-transition dips: Fermi (first 40 nm) below Tesla 2 @55;
	// Pascal (first 16 nm) below Maxwell 2 @28.
	if byKey["Fermi@40"].CSR >= byKey["Tesla 2@55"].CSR {
		t.Error("Fermi@40 should dip below Tesla 2@55 in CSR")
	}
	if byKey["Pascal@16"].CSR >= byKey["Maxwell 2@28"].CSR {
		t.Error("Pascal@16 should dip below Maxwell 2@28 in CSR")
	}
	// Within 28 nm, newer architectures deliver better absolute gains.
	if byKey["Maxwell 2@28"].RelGain <= byKey["GCN 1@28"].RelGain {
		t.Error("newer 28nm architecture should have higher absolute gain")
	}
}

func TestFig7ArchScalingEfficiency(t *testing.T) {
	points, err := ArchScaling(gains.TargetEfficiency)
	if err != nil {
		t.Fatal(err)
	}
	byKey := make(map[string]ArchPoint)
	for _, p := range points {
		byKey[p.Arch+"@"+itoa(int(p.NodeNM))] = p
	}
	if byKey["Pascal@16"].RelGain <= byKey["Tesla@65"].RelGain*6 {
		t.Errorf("Pascal efficiency gain = %.1f×, want order 10×+", byKey["Pascal@16"].RelGain)
	}
	// Maxwell 2 is the efficiency-CSR standout of Figure 7b.
	max := byKey["Maxwell 2@28"]
	for key, p := range byKey {
		if key == "Maxwell 2@28" {
			continue
		}
		if p.CSR >= max.CSR {
			t.Errorf("%s CSR %.2f >= Maxwell 2 %.2f; Maxwell should lead", key, p.CSR, max.CSR)
		}
	}
}

func itoa(v int) string { return fmtInt(v) }

func fmtInt(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// Figure 8 headlines: AlexNet improves ~24×/14×, VGG-16 ~9×/7×; CSR rises
// over the series (an emerging domain) but is not maximal for the best
// absolute performer.
func TestFig8AlexNet(t *testing.T) {
	rows, err := Fig8(AlexNet, gains.TargetThroughput)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("AlexNet has %d implementations, want 11", len(rows))
	}
	best, maxCSR := rows[0], rows[0]
	for _, r := range rows {
		if r.RelGain > best.RelGain {
			best = r
		}
		if r.CSR > maxCSR.CSR {
			maxCSR = r
		}
	}
	if best.RelGain < 20 || best.RelGain > 28 {
		t.Errorf("best AlexNet gain = %.1f×, want ~24×", best.RelGain)
	}
	if maxCSR.CSR < 2 {
		t.Errorf("max AlexNet CSR = %.2f, want a clear rise (emerging domain)", maxCSR.CSR)
	}
	if best.Pub == maxCSR.Pub {
		t.Error("the best absolute performer should not hold the max CSR (its edge is utilization)")
	}
}

func TestFig8VGG(t *testing.T) {
	rows, err := Fig8(VGG16, gains.TargetThroughput)
	if err != nil {
		t.Fatal(err)
	}
	best := rows[0]
	for _, r := range rows {
		if r.RelGain > best.RelGain {
			best = r
		}
	}
	if best.RelGain < 7.5 || best.RelGain > 11 {
		t.Errorf("best VGG-16 gain = %.1f×, want ~9×", best.RelGain)
	}
	// VGG improves less than AlexNet (the model is 3× larger).
	alex, err := Fig8(AlexNet, gains.TargetThroughput)
	if err != nil {
		t.Fatal(err)
	}
	bestAlex := 0.0
	for _, r := range alex {
		bestAlex = math.Max(bestAlex, r.RelGain)
	}
	if best.RelGain >= bestAlex {
		t.Error("VGG-16 should improve less than AlexNet")
	}
}

func TestFig8Efficiency(t *testing.T) {
	alex, err := Fig8(AlexNet, gains.TargetEfficiency)
	if err != nil {
		t.Fatal(err)
	}
	vgg, err := Fig8(VGG16, gains.TargetEfficiency)
	if err != nil {
		t.Fatal(err)
	}
	bestOf := func(rows []Fig8Row) float64 {
		best := 0.0
		for _, r := range rows {
			best = math.Max(best, r.RelGain)
		}
		return best
	}
	if g := bestOf(alex); g < 11 || g > 17 {
		t.Errorf("AlexNet efficiency gain = %.1f×, want ~14×", g)
	}
	if g := bestOf(vgg); g < 5.5 || g > 9 {
		t.Errorf("VGG-16 efficiency gain = %.1f×, want ~7×", g)
	}
}

func TestFig8b(t *testing.T) {
	for _, model := range []CNNModel{AlexNet, VGG16} {
		rows := Fig8b(model)
		if len(rows) == 0 {
			t.Fatalf("%v: no Fig8b rows", model)
		}
		for _, r := range rows {
			if r.UtilLUT <= 0 || r.UtilLUT > 100 || r.UtilDSP <= 0 || r.UtilDSP > 100 || r.UtilBRAM <= 0 || r.UtilBRAM > 100 {
				t.Errorf("%s: utilization out of range: %+v", r.Pub, r)
			}
			if r.FreqMHz < 50 || r.FreqMHz > 500 {
				t.Errorf("%s: frequency %.0f MHz implausible", r.Pub, r.FreqMHz)
			}
		}
	}
	if AlexNet.String() != "AlexNet" || VGG16.String() != "VGG-16" {
		t.Error("CNN model names wrong")
	}
}

func TestMinersDatasetSanity(t *testing.T) {
	miners := Miners()
	kinds := make(map[chipdb.Kind]int)
	for i, m := range miners {
		kinds[m.Kind]++
		if m.PerfGHsMM2 <= 0 || m.EffGHsJ <= 0 || m.FreqGHz <= 0 {
			t.Errorf("miner %s has non-positive metrics", m.Name)
		}
		if i > 0 && m.Year < miners[i-1].Year {
			t.Error("miners not in chronological order")
		}
	}
	for _, k := range []chipdb.Kind{chipdb.CPU, chipdb.GPU, chipdb.FPGA, chipdb.ASIC} {
		if kinds[k] == 0 {
			t.Errorf("no %v miners in dataset", k)
		}
	}
}

func TestDecodersDatasetSanity(t *testing.T) {
	decs := Decoders()
	for _, d := range decs {
		if d.MPixS <= 0 || d.MPixJ <= 0 || d.PowerW <= 0 {
			t.Errorf("%s has non-positive metrics", d.Pub)
		}
		// Self-consistency: MPix/J should approximate MPix/s ÷ W within 3×
		// (measurement conditions differ between papers).
		implied := d.MPixS / d.PowerW
		if d.MPixJ > implied*3 || d.MPixJ < implied/3 {
			t.Errorf("%s: MPix/J %.0f vs implied %.0f — inconsistent by >3×", d.Pub, d.MPixJ, implied)
		}
	}
}

// The ASICBoost extension: a one-time 20% algorithmic gain lands entirely
// in CSR, exactly once, leaving earlier chips untouched.
func TestFig1ASICBoost(t *testing.T) {
	base, err := Fig1()
	if err != nil {
		t.Fatal(err)
	}
	boosted, err := Fig1ASICBoost()
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != len(boosted) {
		t.Fatal("row counts differ")
	}
	for i := range base {
		b, bb := base[i], boosted[i]
		if bb.TransistorPerformance != b.TransistorPerformance {
			t.Errorf("%s: physical potential changed under ASICBoost", b.Name)
		}
		if b.Year < ASICBoostYear {
			if bb.CSR != b.CSR || bb.RelPerformance != b.RelPerformance {
				t.Errorf("%s: pre-2016 chip changed", b.Name)
			}
			continue
		}
		if math.Abs(bb.CSR-b.CSR*1.2) > 1e-12*b.CSR {
			t.Errorf("%s: CSR %.3f, want %.3f (+20%%)", b.Name, bb.CSR, b.CSR*1.2)
		}
	}
	// Equation 1 still holds on the boosted rows.
	for _, r := range boosted {
		if math.Abs(r.CSR*r.TransistorPerformance-r.RelPerformance) > 1e-9*r.RelPerformance {
			t.Errorf("%s: Eq1 violated after boost", r.Name)
		}
	}
}
