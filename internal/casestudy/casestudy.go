// Package casestudy reproduces the empirical specialization-return studies
// of Section IV: Bitcoin mining ASICs (Figures 1 and 9), video decoder
// ASICs (Figure 4), GPU graphics rendering (Figures 5–7), and FPGA
// convolutional neural networks (Figure 8).
//
// The paper's inputs are published measurements — ISSCC/JSSC decoder
// papers, AnandTech GPU benchmark tables, FPGA-conference CNN papers, and
// Bitcoin-wiki miner databases. Those sources are embedded here as curated
// datasets whose chips, nodes, years, and gain magnitudes match the values
// the paper reports (e.g. 64× decoder throughput, 4–6× GPU frame rate,
// ~600× Bitcoin performance per area), so every Section IV analysis —
// normalization, quadratic trend fits, CSR decomposition, architecture
// relation matrices — runs over data with the published shape.
package casestudy

import (
	"fmt"

	"accelwall/internal/cmos"
	"accelwall/internal/gains"
)

// DevicePotential is the physical model used for per-area metrics such as
// Bitcoin's GHash/s/mm² (Section IV-D): throughput potential per mm² is
// transistor density × switching speed, and efficiency potential is the
// reciprocal of per-operation dynamic energy. Unlike the full chip model of
// package gains it deliberately ignores die size and TDP, because the
// metric already normalizes area away and miner ASICs are deployed in
// arbitrarily large farms.
type DevicePotential struct {
	// Nodes optionally substitutes a CMOS scaling table for the package
	// default — the Monte Carlo uncertainty engine injects jittered tables
	// here. The zero value reads the calibrated default table, preserving
	// the paper's point estimates.
	Nodes *cmos.Table
}

// lookup resolves a feature size against the model's scaling table.
func (d DevicePotential) lookup(nm float64) (cmos.Node, error) {
	if d.Nodes != nil {
		return d.Nodes.Lookup(nm)
	}
	return cmos.Lookup(nm)
}

// Ratio implements the csr.Physical interface over raw device scaling.
func (d DevicePotential) Ratio(target gains.Target, a, b gains.Config) (float64, error) {
	na, err := d.lookup(a.NodeNM)
	if err != nil {
		return 0, fmt.Errorf("casestudy: chip a: %w", err)
	}
	nb, err := d.lookup(b.NodeNM)
	if err != nil {
		return 0, fmt.Errorf("casestudy: chip b: %w", err)
	}
	if a.FreqGHz <= 0 || b.FreqGHz <= 0 {
		return 0, fmt.Errorf("casestudy: non-positive frequency (%g, %g)", a.FreqGHz, b.FreqGHz)
	}
	switch target {
	case gains.TargetEfficiency:
		// Operations per joule scale with the reciprocal of C·V² energy.
		return nb.DynEnergy() / na.DynEnergy(), nil
	default:
		// Operations per second per mm² scale with density × speed.
		return (na.Density() * a.FreqGHz) / (nb.Density() * b.FreqGHz), nil
	}
}

// Domain identifies one of the four Section IV case studies.
type Domain int

// The four case-study domains.
const (
	DomainBitcoin Domain = iota
	DomainVideoDecode
	DomainGPUGraphics
	DomainFPGACNN
)

var domainNames = [...]string{"Bitcoin Mining", "Video Decoding", "Gaming/Graphics", "Convolutional NN"}

// String returns the domain name as used in Table V.
func (d Domain) String() string {
	if d >= 0 && int(d) < len(domainNames) {
		return domainNames[d]
	}
	return fmt.Sprintf("Domain(%d)", int(d))
}

// Domains returns the four case-study domains in Section IV order
// (Figures 4, 5–7, 8, 9 cover them; Table V summarizes them).
func Domains() []Domain {
	return []Domain{DomainVideoDecode, DomainGPUGraphics, DomainFPGACNN, DomainBitcoin}
}
