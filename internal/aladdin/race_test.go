//go:build race

package aladdin

// raceEnabled reports whether the race detector is active. Allocation
// regression gates skip under -race: the detector deliberately randomizes
// sync.Pool reuse, so pooled paths allocate nondeterministically there.
const raceEnabled = true
