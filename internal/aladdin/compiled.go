package aladdin

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"accelwall/internal/cmos"
	"accelwall/internal/dfg"
)

// pitem is a ready-heap entry with the scheduler's three-way ordering
// (earliest asc, priority desc, id asc) packed into one uint64: the high 32
// bits hold the earliest issue cycle and the low 32 bits the node's rank in
// the per-class (priority desc, id asc) total order. A single integer
// compare then reproduces readyQueue.Less exactly; Compile rejects graphs
// whose worst-case schedule length could overflow the 32-bit cycle field.
type pitem struct {
	key uint64
	id  int32
}

// pushP inserts an item, maintaining the min-heap invariant of a 4-ary
// heap (children of i at 4i+1..4i+4): half the depth of a binary heap,
// which matters because each sift level is a likely cache miss on large
// ready sets. The hand-rolled heap avoids container/heap's interface
// boxing on every insert; because the key order is total (ranks are
// unique), the pop sequence is independent of heap shape and identical to
// container/heap's over readyQueue.
func pushP(h []pitem, it pitem) []pitem {
	h = append(h, it)
	j := len(h) - 1
	for j > 0 {
		parent := (j - 1) / 4
		if h[parent].key <= it.key {
			break
		}
		h[j] = h[parent]
		j = parent
	}
	h[j] = it
	return h
}

// popP removes the minimum item and returns its node id.
func popP(h []pitem) ([]pitem, int32) {
	n := len(h) - 1
	top := h[0].id
	it := h[n]
	h = h[:n]
	if n > 0 {
		i := 0
		for {
			l := 4*i + 1
			if l >= n {
				break
			}
			j, k := l, h[l].key
			hi := l + 4
			if hi > n {
				hi = n
			}
			for m := l + 1; m < hi; m++ {
				if h[m].key < k {
					j, k = m, h[m].key
				}
			}
			if k >= it.key {
				break
			}
			h[i] = h[j]
			i = j
		}
		h[i] = it
	}
	return h, top
}

// numExtraClasses is the number of distinct pipeline-depth penalties over
// the legal simplification range 1..MaxSimplification. It mirrors the
// integer division in extraLatency; TestExtraClassesCoverRange pins the two
// together.
const numExtraClasses = (MaxSimplification-1)/4 + 1

// Compiled is the per-graph compiled simulation state: every invariant the
// scheduler needs that does not depend on the design point, precomputed
// once so a design-space sweep pays for graph analysis a single time
// instead of once per design.
//
// The precomputed state is a flat CSR-style adjacency (predecessor and
// successor index slices instead of per-node slice-of-slice walks), per-op
// cost metadata, the graph statistics that feed the area model, and — built
// lazily per pipeline-depth class — the longest-downstream-path priorities
// of the list scheduler. Per-call scratch buffers (ready heap, finish-time,
// chain-depth, and lane-occupancy arrays) are pooled and reused, so a
// Simulate call performs zero graph traversal and, in steady state, zero
// per-node allocation.
//
// A Compiled is immutable after Compile and safe for concurrent use by any
// number of goroutines; the underlying graph must not be mutated once
// compiled.
type Compiled struct {
	name string
	n    int

	// CSR adjacency: the predecessors of node i are
	// preds[predStart[i]:predStart[i+1]], in the same order the builder
	// recorded them (the scheduler's tie-breaking depends on that order).
	predStart []int32
	preds     []int32
	succStart []int32
	succs     []int32

	ops       []dfg.Op
	baseLat   []int32   // Op.Latency() for compute nodes, 0 for structural
	energy    []float64 // Op.Energy() for compute nodes, 0 for structural
	isCompute []bool
	isMem     []bool // load or store: consumes a memory bank port
	cheap     []bool // single-cycle compute op: eligible for chaining

	stats      dfg.Stats
	mixArea    float64 // TotalArea / VCmp: average functional-unit mix per lane
	numCompute int
	hasCheap   bool // any single-cycle compute op: chaining is possible at all

	// Critical-path priorities depend on the design only through the
	// pipeline-depth penalty extraLatency(Simplification), which takes
	// numExtraClasses distinct values; each class's array is computed once
	// on first use. rank[e][i] is node i's position in the class's
	// (priority desc, id asc) total order — the heap's packed tiebreaker.
	prioOnce [numExtraClasses]sync.Once
	prio     [numExtraClasses][]int32
	rank     [numExtraClasses][]int32

	pool sync.Pool // of *scratch

	// Schedule-class cache (see batch.go): the scheduling walk depends on
	// the design only through its schedKey, and the saturation argument in
	// schedSummary.matches lets one walk stand in for every lane-capacity
	// plateau above its high-water occupancy. Summaries are immutable once
	// stored; the slice is guarded by schedMu and bounded by
	// maxSchedSummaries with round-robin replacement.
	schedMu    sync.RWMutex
	scheds     []*schedSummary
	schedClock int

	schedWalks atomic.Uint64 // full scheduling walks executed
	schedHits  atomic.Uint64 // designs served from a cached/reused summary
}

// scratch is the reusable per-simulation working memory.
type scratch struct {
	start     []int
	finish    []int
	chain     []int // chained ops executed in the same cycle so far
	pending   []int // unscheduled predecessor count
	scheduled []bool
	queue     []pitem
	lanes     []int // cycle -> datapath lanes used
	memLanes  []int // cycle -> memory bank ports used
}

// Compile analyzes the graph once and returns the compiled engine. The
// graph must be valid (workload builders guarantee this) and must not be
// mutated afterwards.
func Compile(g *dfg.Graph) (*Compiled, error) {
	if g == nil {
		return nil, errors.New("aladdin: nil graph")
	}
	nodes := g.Nodes()
	n := len(nodes)
	c := &Compiled{
		name:      g.Name,
		n:         n,
		predStart: make([]int32, n+1),
		succStart: make([]int32, n+1),
		ops:       make([]dfg.Op, n),
		baseLat:   make([]int32, n),
		energy:    make([]float64, n),
		isCompute: make([]bool, n),
		isMem:     make([]bool, n),
		cheap:     make([]bool, n),
	}
	maxLat := 0
	for _, nd := range nodes {
		c.ops[nd.ID] = nd.Op
		if nd.Op.IsCompute() {
			c.isCompute[nd.ID] = true
			c.baseLat[nd.ID] = int32(nd.Op.Latency())
			c.energy[nd.ID] = nd.Op.Energy()
			c.isMem[nd.ID] = nd.Op == dfg.OpLoad || nd.Op == dfg.OpStore
			c.cheap[nd.ID] = nd.Op.Latency() == 1
			if c.cheap[nd.ID] {
				c.hasCheap = true
			}
			c.numCompute++
			if l := nd.Op.Latency(); l > maxLat {
				maxLat = l
			}
		}
	}
	// The packed heap key stores issue cycles in 32 bits. Every issue cycle
	// is bounded by the sum of all op latencies plus one contention- and one
	// bank-skip cycle per op, so n*(maxLat+5) bounds the whole schedule.
	if int64(n)*int64(maxLat+5) >= 1<<32 {
		return nil, fmt.Errorf("aladdin: graph %q too large to compile (%d vertices)", g.Name, n)
	}
	// Flatten adjacency. Both directions preserve the builder's edge order.
	for _, nd := range nodes {
		c.predStart[nd.ID+1] = c.predStart[nd.ID] + int32(len(g.Preds(nd.ID)))
		c.succStart[nd.ID+1] = c.succStart[nd.ID] + int32(len(g.Succs(nd.ID)))
	}
	c.preds = make([]int32, c.predStart[n])
	c.succs = make([]int32, c.succStart[n])
	for _, nd := range nodes {
		pi := c.predStart[nd.ID]
		for _, p := range g.Preds(nd.ID) {
			c.preds[pi] = int32(p)
			pi++
		}
		si := c.succStart[nd.ID]
		for _, s := range g.Succs(nd.ID) {
			c.succs[si] = int32(s)
			si++
		}
	}
	c.stats = g.ComputeStats()
	if c.stats.VCmp > 0 {
		c.mixArea = g.TotalArea() / float64(c.stats.VCmp)
	}
	c.pool.New = func() any { return c.newScratch() }
	return c, nil
}

// newScratch allocates a fresh walk scratch for the compiled graph. It is
// the pool's New hook and the replacement path when a panicking lane
// abandons a possibly mid-schedule scratch (see simulateLane).
func (c *Compiled) newScratch() *scratch {
	return &scratch{
		start:     make([]int, c.n),
		finish:    make([]int, c.n),
		chain:     make([]int, c.n),
		pending:   make([]int, c.n),
		scheduled: make([]bool, c.n),
	}
}

// Name returns the compiled graph's name.
func (c *Compiled) Name() string { return c.name }

// NumVertices returns the vertex count of the compiled graph.
func (c *Compiled) NumVertices() int { return c.n }

// Stats returns the compiled graph's statistics (computed once at compile
// time). The WorkingSets slice is shared; do not mutate it.
func (c *Compiled) Stats() dfg.Stats { return c.stats }

// priorities returns the critical-path priority array for one
// pipeline-depth class, computing it on first use. The priority of a node
// is the longest downstream latency sum including the node's own latency.
// The same pass derives the class's rank array: node ranks sorted by
// (priority desc, id asc), so the ready heap can break ties with one
// integer compare instead of re-deriving the order on every sift.
func (c *Compiled) priorities(extra int) []int32 {
	c.prioOnce[extra].Do(func() {
		p := make([]int32, c.n)
		for i := c.n - 1; i >= 0; i-- {
			best := int32(0)
			for _, s := range c.succs[c.succStart[i]:c.succStart[i+1]] {
				if p[s] > best {
					best = p[s]
				}
			}
			lat := int32(0)
			if c.isCompute[i] {
				lat = c.baseLat[i] + int32(extra)
			}
			p[i] = best + lat
		}
		order := make([]int32, c.n)
		for i := range order {
			order[i] = int32(i)
		}
		sort.Slice(order, func(a, b int) bool {
			if p[order[a]] != p[order[b]] {
				return p[order[a]] > p[order[b]]
			}
			return order[a] < order[b]
		})
		rank := make([]int32, c.n)
		for pos, id := range order {
			rank[id] = int32(pos)
		}
		c.prio[extra] = p
		c.rank[extra] = rank
	})
	return c.prio[extra]
}

// ranks returns the class's packed-heap tiebreaker array, computing the
// class on first use.
func (c *Compiled) ranks(extra int) []int32 {
	c.priorities(extra)
	return c.rank[extra]
}

// Simulate schedules the compiled graph onto the design point and returns
// the pre-RTL estimates. Safe for concurrent use.
func (c *Compiled) Simulate(d Design) (Result, error) {
	res, _, err := c.simulate(d, false)
	return res, err
}

// Trace simulates like Simulate but additionally returns the per-operation
// schedule, ordered by (Start, ID).
func (c *Compiled) Trace(d Design) (Schedule, error) {
	res, slots, err := c.simulate(d, true)
	if err != nil {
		return Schedule{}, err
	}
	sort.Slice(slots, func(i, j int) bool {
		if slots[i].Start != slots[j].Start {
			return slots[i].Start < slots[j].Start
		}
		return slots[i].ID < slots[j].ID
	})
	return Schedule{Result: res, Slots: slots}, nil
}

// CriticalPathCycles returns the schedule-independent lower bound on cycles
// under the design's latency model: the longest latency path. Partitioning
// can never beat it; the sweep uses it to find the taper point.
func (c *Compiled) CriticalPathCycles(d Design) (int, error) {
	if err := d.Validate(); err != nil {
		return 0, err
	}
	prio := c.priorities(extraLatency(d.Simplification))
	best := int32(0)
	for _, p := range prio {
		if p > best {
			best = p
		}
	}
	return int(best), nil
}

// growTo extends s with zeros until index i is addressable.
func growTo(s []int, i int) []int {
	if i < len(s) {
		return s
	}
	return append(s, make([]int, i+1-len(s))...)
}

// simulate is the single scheduling core behind every Simulate and Trace
// entry point; with capture set it records per-operation slots. The work
// splits in two: walk runs the longest-path-first list scheduler (the part
// that depends on the design only through its schedule class), and
// finishResult derives the per-design metrics from the walk's summary.
// Without capture, a design whose class has already been walked skips the
// scheduler entirely and pays only the metric derivation.
func (c *Compiled) simulate(d Design, capture bool) (Result, []OpSlot, error) {
	if err := d.Validate(); err != nil {
		return Result{}, nil, err
	}
	if d.ClockGHz == 0 {
		d.ClockGHz = 1
	}
	node := cmos.MustLookup(d.NodeNM)
	key := c.walkKey(d, node)
	if !capture {
		if sum := c.lookupSched(key); sum != nil {
			return c.finishResult(d, node, sum), nil, nil
		}
	}
	s := c.pool.Get().(*scratch)
	sum, slots, err := c.walk(key, s, capture)
	// The scratch is re-pooled only after a clean walk: a panic below
	// propagates past this point and the possibly mid-schedule scratch is
	// dropped for the collector instead of poisoning the pool.
	c.pool.Put(s)
	if err != nil {
		return Result{}, nil, err
	}
	c.storeSched(sum)
	return c.finishResult(d, node, sum), slots, nil
}

// walk runs the longest-path-first list scheduler for one schedule class
// over pooled scratch buffers with no graph traversal: all structure comes
// from the compiled CSR slices. It returns the class's schedule summary —
// everything finishResult needs plus the saturation facts (high-water lane
// and bank occupancy, whether any contention skip fired) that let the
// summary stand in for other lane capacities. With capture set it also
// records per-operation slots.
func (c *Compiled) walk(key schedKey, s *scratch, capture bool) (*schedSummary, []OpSlot, error) {
	partition, banks := key.partition, key.banks
	extra, window := key.extra, key.window
	rank := c.ranks(extra)
	c.schedWalks.Add(1)

	start, finish, chain, pending := s.start, s.finish, s.chain, s.pending
	scheduledCount := 0
	for i := 0; i < c.n; i++ {
		pending[i] = int(c.predStart[i+1] - c.predStart[i])
		s.scheduled[i] = false
	}
	q := s.queue[:0]
	for i := 0; i < c.n; i++ {
		if pending[i] != 0 {
			continue
		}
		// Inputs are available at cycle 0.
		s.scheduled[i] = true
		scheduledCount++
		start[i], finish[i], chain[i] = 0, 0, 0
		for _, sc := range c.succs[c.succStart[i]:c.succStart[i+1]] {
			pending[sc]--
			if pending[sc] == 0 {
				q = pushP(q, pitem{key: uint64(rank[sc]), id: sc})
			}
		}
	}

	maxCycle := 0
	lanes, memLanes := s.lanes, s.memLanes
	lanesHi, memHi := 0, 0 // exclusive high-water marks for cheap reset
	issuedOps := 0
	fusedOps := 0
	maxLane, maxMem := 0, 0 // high-water per-cycle occupancy
	dpSkipped, bankSkipped := false, false

	for len(q) > 0 {
		var nid int32
		q, nid = popP(q)
		id := int(nid)
		predsOf := c.preds[c.predStart[id]:c.predStart[id+1]]
		if c.ops[id] == dfg.OpOutput {
			// Outputs materialize when their producer finishes; no lane use.
			p := predsOf[0]
			start[id], finish[id], chain[id] = finish[p], finish[p], 0
			s.scheduled[id] = true
			scheduledCount++
			if finish[id] > maxCycle {
				maxCycle = finish[id]
			}
			continue
		}
		// Earliest normal issue: all operand values available.
		earliest := 0
		for _, p := range predsOf {
			if finish[p] > earliest {
				earliest = finish[p]
			}
		}
		// Chaining (heterogeneity): a cheap op may issue in the same cycle
		// as cheap predecessors — a combinational cascade — provided every
		// operand is either already finished by that cycle or is itself a
		// same-cycle chain link, and the total cascade depth stays within
		// the node's window. Deep-pipelined designs (extra latency) cannot
		// chain: their units are registered.
		chained := false
		issue := earliest
		if window > 1 && c.cheap[id] && extra == 0 {
			// Candidate cycle: treat chain-eligible cheap operands as
			// available at their start cycle rather than their finish.
			candidate := 0
			for _, p := range predsOf {
				a := finish[p]
				if c.cheap[p] && chain[p]+1 < window {
					a = start[p]
				}
				if a > candidate {
					candidate = a
				}
			}
			if candidate < earliest {
				pos, feasible := 0, true
				for _, p := range predsOf {
					switch {
					case finish[p] <= candidate:
						// Operand ready before the cycle starts.
					case start[p] == candidate && c.cheap[p] && chain[p]+1 < window:
						if chain[p]+1 > pos {
							pos = chain[p] + 1
						}
					default:
						feasible = false
					}
				}
				if feasible && pos > 0 {
					chained = true
					issue = candidate
					chain[id] = pos
				}
			}
		}
		isMem := c.isMem[id]
		if !chained {
			// Find a cycle at or after earliest with a free lane — and,
			// for memory operations, a free bank port. Cycles beyond the
			// occupancy arrays' lengths are untouched, i.e. free. The skip
			// flags record whether either capacity was ever binding: a walk
			// that never skipped replays identically under any capacity at
			// or above its high-water occupancy (see schedSummary.matches).
			for {
				if issue < len(lanes) && lanes[issue] >= partition {
					dpSkipped = true
					issue++
					continue
				}
				if isMem && issue < len(memLanes) && memLanes[issue] >= banks {
					bankSkipped = true
					issue++
					continue
				}
				break
			}
			lanes = growTo(lanes, issue)
			lanes[issue]++
			if lanes[issue] > maxLane {
				maxLane = lanes[issue]
			}
			if issue+1 > lanesHi {
				lanesHi = issue + 1
			}
			if isMem {
				memLanes = growTo(memLanes, issue)
				memLanes[issue]++
				if memLanes[issue] > maxMem {
					maxMem = memLanes[issue]
				}
				if issue+1 > memHi {
					memHi = issue + 1
				}
			}
			chain[id] = 0
		} else {
			fusedOps++
		}
		issuedOps++
		start[id] = issue
		if chained {
			// A chained op completes within the shared cycle.
			finish[id] = issue + 1
		} else {
			finish[id] = issue + int(c.baseLat[id]) + extra
		}
		s.scheduled[id] = true
		scheduledCount++
		if finish[id] > maxCycle {
			maxCycle = finish[id]
		}
		for _, sc := range c.succs[c.succStart[id]:c.succStart[id+1]] {
			pending[sc]--
			if pending[sc] == 0 {
				q = pushP(q, pitem{key: uint64(finish[id])<<32 | uint64(rank[sc]), id: sc})
			}
		}
	}
	// Return the grown buffers (and the heap's backing array) to the
	// scratch, zeroing only the touched occupancy prefix.
	clear(lanes[:lanesHi])
	clear(memLanes[:memHi])
	s.lanes, s.memLanes, s.queue = lanes, memLanes, q
	if scheduledCount != c.n {
		for i := 0; i < c.n; i++ {
			if !s.scheduled[i] {
				return nil, nil, fmt.Errorf("aladdin: scheduler failed to place vertex %d (graph not validated?)", i)
			}
		}
	}
	if maxCycle < 1 {
		maxCycle = 1
	}

	sum := &schedSummary{
		key:         key,
		cycles:      maxCycle,
		issuedOps:   issuedOps,
		fusedOps:    fusedOps,
		maxLane:     maxLane,
		maxMem:      maxMem,
		dpSkipped:   dpSkipped,
		bankSkipped: bankSkipped,
		chained:     make([]bool, c.n),
	}
	for i := 0; i < c.n; i++ {
		sum.chained[i] = chain[i] > 0
	}

	var slots []OpSlot
	if capture {
		slots = make([]OpSlot, 0, issuedOps)
		for i := 0; i < c.n; i++ {
			if !c.isCompute[i] {
				continue
			}
			slots = append(slots, OpSlot{
				ID:      dfg.NodeID(i),
				Op:      c.ops[i],
				Start:   start[i],
				Finish:  finish[i],
				Chained: chain[i] > 0,
			})
		}
	}
	return sum, slots, nil
}

// finishResult derives one design point's metrics from its schedule-class
// summary. The ClockGHz default must already be applied to d. Every float
// operation here replays the pre-split engine's exact sequence — in
// particular the dynamic-energy summation iterates nodes in ID order with
// the per-node fused discount, never a pre-aggregated sum — so a summary
// hit is bit-identical to a fresh walk.
func (c *Compiled) finishResult(d Design, node cmos.Node, sum *schedSummary) Result {
	banks := d.MemoryBanks
	if banks == 0 {
		banks = d.Partition
	}
	maxCycle := sum.cycles

	// Energy, area, power from the schedule. The summation iterates nodes
	// in ID order, matching the pre-compiled engine bit for bit.
	eScale := energyScale(d.Simplification) * node.DynEnergy()
	var dynEnergy float64
	for i := 0; i < c.n; i++ {
		if !c.isCompute[i] {
			continue
		}
		e := c.energy[i] * eScale
		if sum.chained[i] {
			e *= fusedEnergyScale
		}
		dynEnergy += e
	}
	// Lane area: each lane carries the workload's average functional-unit
	// mix; storage covers the largest working set.
	area := (float64(d.Partition)*c.mixArea + float64(banks)*bankArea + float64(c.stats.MaxWS)*regArea) * areaScale(d.Simplification)

	cycleNS := 1 / (d.ClockGHz * node.Freq)
	runtime := float64(maxCycle) * cycleNS
	leakEnergy := leakPerAreaNS * area * node.LeakPower() * runtime
	energy := dynEnergy + leakEnergy

	util := 0.0
	if maxCycle > 0 && d.Partition > 0 {
		util = float64(sum.issuedOps-sum.fusedOps) / (float64(d.Partition) * float64(maxCycle))
	}

	return Result{
		Design:      d,
		Cycles:      maxCycle,
		RuntimeNS:   runtime,
		DynEnergy:   dynEnergy,
		LeakEnergy:  leakEnergy,
		Energy:      energy,
		Power:       energy / runtime,
		Area:        area,
		Utilization: util,
		FusedOps:    sum.fusedOps,
	}
}
