package aladdin

import (
	"errors"
	"strings"
	"testing"

	"accelwall/internal/dfg"
	"accelwall/internal/faultinject"
	"accelwall/internal/leakcheck"
	"accelwall/internal/workloads"
)

// buildWorkload compiles one Table IV workload graph for batch tests.
func buildWorkload(t *testing.T, abbrev string, n int) *dfg.Graph {
	t.Helper()
	spec, err := workloads.ByAbbrev(abbrev)
	if err != nil {
		t.Fatal(err)
	}
	g, err := spec.Build(n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestSimulateBatchMatchesSequential pins the tentpole invariant at the
// engine level: SimulateBatch over the full design axes is bit-identical
// to the same designs run through sequential Simulate calls, for every
// Table IV workload. Separate Compiled instances isolate the two paths so
// neither can serve the other's schedule cache.
func TestSimulateBatchMatchesSequential(t *testing.T) {
	for _, spec := range workloads.All() {
		spec := spec
		t.Run(spec.Abbrev, func(t *testing.T) {
			g, err := spec.Build(0)
			if err != nil {
				t.Fatal(err)
			}
			seq, err := Compile(g)
			if err != nil {
				t.Fatal(err)
			}
			bat, err := Compile(g)
			if err != nil {
				t.Fatal(err)
			}
			designs := equivalenceDesigns()
			want := make([]Result, len(designs))
			for i, d := range designs {
				if want[i], err = seq.Simulate(d); err != nil {
					t.Fatal(err)
				}
			}
			got, err := bat.SimulateBatch(designs)
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("lane %d (%+v):\nbatch      %+v\nsequential %+v", i, designs[i], got[i], want[i])
				}
			}
			walks, hits := bat.ScheduleCacheStats()
			if hits == 0 {
				t.Error("batch run reused no schedule summaries")
			}
			if walks >= uint64(len(designs)) {
				t.Errorf("no walk amortization: %d walks for %d designs", walks, len(designs))
			}
		})
	}
}

// TestSimulateBatchLanePanicIsolation arms the lane seam with
// deterministic panics and asserts the failure is contained lane by lane:
// every third lane errors, every sibling lane's result stays bit-identical
// to the unfaulted reference, and once the injector is gone the same
// Compiled (same pool, same cache) reproduces the reference exactly —
// proving neither the shared scratch nor the schedule cache was poisoned.
func TestSimulateBatchLanePanicIsolation(t *testing.T) {
	leakcheck.Check(t)
	g := buildWorkload(t, "FFT", 0)
	c, err := Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	designs := equivalenceDesigns()
	want := make([]Result, len(designs))
	for i, d := range designs {
		if want[i], err = ref.Simulate(d); err != nil {
			t.Fatal(err)
		}
	}

	faultinject.Enable(faultinject.New(1).Set(SiteLane, faultinject.Rule{
		Mode: faultinject.ModePanic, Every: 3,
	}))
	defer faultinject.Disable()
	results := make([]Result, len(designs))
	errs := make([]error, len(designs))
	c.SimulateBatchInto(designs, results, errs)
	for i := range designs {
		if (i+1)%3 == 0 {
			if errs[i] == nil {
				t.Fatalf("lane %d: injected panic produced no error", i)
			}
			if !strings.Contains(errs[i].Error(), "batch lane panic") {
				t.Fatalf("lane %d: unexpected error %v", i, errs[i])
			}
			continue
		}
		if errs[i] != nil {
			t.Fatalf("sibling lane %d failed: %v", i, errs[i])
		}
		if results[i] != want[i] {
			t.Fatalf("sibling lane %d diverged after neighboring panic:\n got %+v\nwant %+v", i, results[i], want[i])
		}
	}

	faultinject.Disable()
	again, err := c.SimulateBatch(designs)
	if err != nil {
		t.Fatalf("post-chaos batch failed: %v", err)
	}
	for i := range again {
		if again[i] != want[i] {
			t.Fatalf("post-chaos lane %d diverged", i)
		}
	}
}

// TestSimulateBatchLaneError: an injected lane error surfaces through
// SimulateBatch as the first failure, wrapping the injection sentinel and
// naming the lane.
func TestSimulateBatchLaneError(t *testing.T) {
	g := buildWorkload(t, "RED", 32)
	c, err := Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Enable(faultinject.New(1).Set(SiteLane, faultinject.Rule{
		Mode: faultinject.ModeError, Every: 2,
	}))
	defer faultinject.Disable()
	_, err = c.SimulateBatch(equivalenceDesigns()[:4])
	if err == nil {
		t.Fatal("injected lane error vanished")
	}
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("error does not wrap ErrInjected: %v", err)
	}
	if !strings.Contains(err.Error(), "batch lane 1") {
		t.Fatalf("error does not name the failing lane: %v", err)
	}
}

// TestSimulateBatchInvalidLane: an invalid design fails its own lane only.
func TestSimulateBatchInvalidLane(t *testing.T) {
	g := buildWorkload(t, "RED", 32)
	c, err := Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	good := Design{NodeNM: 45, Partition: 4, Simplification: 1}
	want, err := c.Simulate(good)
	if err != nil {
		t.Fatal(err)
	}
	designs := []Design{good, {NodeNM: 45, Partition: 0, Simplification: 1}, good}
	results := make([]Result, 3)
	errs := make([]error, 3)
	c.SimulateBatchInto(designs, results, errs)
	if errs[1] == nil {
		t.Fatal("invalid lane did not error")
	}
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("valid lanes errored: %v, %v", errs[0], errs[2])
	}
	if results[0] != want || results[2] != want {
		t.Fatal("valid lanes diverged around an invalid sibling")
	}
}

// TestSimulateBatchIntoLengthMismatch pins the misuse guard.
func TestSimulateBatchIntoLengthMismatch(t *testing.T) {
	g := buildWorkload(t, "RED", 32)
	c, err := Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	c.SimulateBatchInto(make([]Design, 2), make([]Result, 1), make([]error, 2))
}

// TestSimulateBatchSteadyStateAllocs is the allocs-per-op regression gate
// on the batch path: once the schedule cache and scratch pool are warm, a
// whole batch must not grow the heap at all.
func TestSimulateBatchSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector randomizes sync.Pool reuse")
	}
	g := buildWorkload(t, "FFT", 0)
	c, err := Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	designs := equivalenceDesigns()[:8]
	results := make([]Result, len(designs))
	errs := make([]error, len(designs))
	c.SimulateBatchInto(designs, results, errs) // warm cache + pool
	for _, e := range errs {
		if e != nil {
			t.Fatal(e)
		}
	}
	if avg := testing.AllocsPerRun(50, func() {
		c.SimulateBatchInto(designs, results, errs)
	}); avg != 0 {
		t.Errorf("warm SimulateBatchInto allocates %.1f objects per batch, want 0", avg)
	}
}
