package aladdin

import (
	"container/heap"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"accelwall/internal/cmos"
	"accelwall/internal/dfg"
	"accelwall/internal/workloads"
)

// referenceSimulate is the pre-compiled-engine scheduler, kept verbatim as
// the oracle for the equivalence suite: Compiled.Simulate must reproduce
// its Result — and Trace its slots — bit for bit. It walks the graph
// directly and tracks lane occupancy in maps, exactly as the engine did
// before the Compile/Simulate split.
func referenceSimulate(g *dfg.Graph, d Design, capture bool) (Result, []OpSlot, error) {
	if g == nil {
		return Result{}, nil, fmt.Errorf("aladdin: nil graph")
	}
	if err := d.Validate(); err != nil {
		return Result{}, nil, err
	}
	if d.ClockGHz == 0 {
		d.ClockGHz = 1
	}
	node := cmos.MustLookup(d.NodeNM)
	window := fusionWindow(node, d.Fusion)
	extra := extraLatency(d.Simplification)
	banks := d.MemoryBanks
	if banks == 0 {
		banks = d.Partition
	}

	nodes := g.Nodes()
	n := len(nodes)
	latency := make([]int, n)
	for _, nd := range nodes {
		if nd.Op.IsCompute() {
			latency[nd.ID] = nd.Op.Latency() + extra
		}
	}
	prio := make([]int, n)
	for i := n - 1; i >= 0; i-- {
		id := nodes[i].ID
		best := 0
		for _, s := range g.Succs(id) {
			if p := prio[s]; p > best {
				best = p
			}
		}
		prio[id] = best + latency[id]
	}

	start := make([]int, n)
	finish := make([]int, n)
	chain := make([]int, n)
	pendingPreds := make([]int, n)
	scheduled := make([]bool, n)
	var q readyQueue
	for _, nd := range nodes {
		pendingPreds[nd.ID] = len(g.Preds(nd.ID))
	}
	for _, nd := range nodes {
		if pendingPreds[nd.ID] != 0 {
			continue
		}
		scheduled[nd.ID] = true
		start[nd.ID], finish[nd.ID], chain[nd.ID] = 0, 0, 0
		for _, s := range g.Succs(nd.ID) {
			pendingPreds[s]--
			if pendingPreds[s] == 0 {
				heap.Push(&q, item{id: s, earliest: 0, priority: prio[s]})
			}
		}
	}

	cheap := func(id dfg.NodeID) bool {
		return nodes[id].Op.IsCompute() && nodes[id].Op.Latency() == 1
	}

	maxCycle := 0
	issuedAt := make(map[int]int)
	memIssuedAt := make(map[int]int)
	issuedOps := 0
	fusedOps := 0

	for q.Len() > 0 {
		it := heap.Pop(&q).(item)
		id := it.id
		if nodes[id].Op == dfg.OpOutput {
			p := g.Preds(id)[0]
			start[id], finish[id] = finish[p], finish[p]
			scheduled[id] = true
			if finish[id] > maxCycle {
				maxCycle = finish[id]
			}
			continue
		}
		earliest := 0
		for _, p := range g.Preds(id) {
			if finish[p] > earliest {
				earliest = finish[p]
			}
		}
		chained := false
		issue := earliest
		if window > 1 && cheap(id) && extra == 0 {
			candidate := 0
			for _, p := range g.Preds(id) {
				a := finish[p]
				if cheap(p) && chain[p]+1 < window {
					a = start[p]
				}
				if a > candidate {
					candidate = a
				}
			}
			if candidate < earliest {
				pos, feasible := 0, true
				for _, p := range g.Preds(id) {
					switch {
					case finish[p] <= candidate:
					case start[p] == candidate && cheap(p) && chain[p]+1 < window:
						if chain[p]+1 > pos {
							pos = chain[p] + 1
						}
					default:
						feasible = false
					}
				}
				if feasible && pos > 0 {
					chained = true
					issue = candidate
					chain[id] = pos
				}
			}
		}
		isMem := nodes[id].Op == dfg.OpLoad || nodes[id].Op == dfg.OpStore
		if !chained {
			for issuedAt[issue] >= d.Partition || (isMem && memIssuedAt[issue] >= banks) {
				issue++
			}
			issuedAt[issue]++
			if isMem {
				memIssuedAt[issue]++
			}
			chain[id] = 0
		} else {
			fusedOps++
		}
		issuedOps++
		start[id] = issue
		if chained {
			finish[id] = issue + 1
		} else {
			finish[id] = issue + latency[id]
		}
		scheduled[id] = true
		if finish[id] > maxCycle {
			maxCycle = finish[id]
		}
		for _, s := range g.Succs(id) {
			pendingPreds[s]--
			if pendingPreds[s] == 0 {
				heap.Push(&q, item{id: s, earliest: finish[id], priority: prio[s]})
			}
		}
	}
	for i := range scheduled {
		if !scheduled[i] {
			return Result{}, nil, fmt.Errorf("aladdin: scheduler failed to place vertex %d", i)
		}
	}
	if maxCycle < 1 {
		maxCycle = 1
	}

	eScale := energyScale(d.Simplification) * node.DynEnergy()
	var dynEnergy float64
	for _, nd := range nodes {
		if !nd.Op.IsCompute() {
			continue
		}
		e := nd.Op.Energy() * eScale
		if chain[nd.ID] > 0 {
			e *= fusedEnergyScale
		}
		dynEnergy += e
	}
	stats := g.ComputeStats()
	var mixArea float64
	if stats.VCmp > 0 {
		mixArea = g.TotalArea() / float64(stats.VCmp)
	}
	area := (float64(d.Partition)*mixArea + float64(banks)*bankArea + float64(stats.MaxWS)*regArea) * areaScale(d.Simplification)

	cycleNS := 1 / (d.ClockGHz * node.Freq)
	runtime := float64(maxCycle) * cycleNS
	leakEnergy := leakPerAreaNS * area * node.LeakPower() * runtime
	energy := dynEnergy + leakEnergy

	util := 0.0
	if maxCycle > 0 && d.Partition > 0 {
		util = float64(issuedOps-fusedOps) / (float64(d.Partition) * float64(maxCycle))
	}

	var slots []OpSlot
	if capture {
		slots = make([]OpSlot, 0, issuedOps)
		for _, nd := range nodes {
			if !nd.Op.IsCompute() {
				continue
			}
			slots = append(slots, OpSlot{
				ID:      nd.ID,
				Op:      nd.Op,
				Start:   start[nd.ID],
				Finish:  finish[nd.ID],
				Chained: chain[nd.ID] > 0,
			})
		}
	}
	return Result{
		Design:      d,
		Cycles:      maxCycle,
		RuntimeNS:   runtime,
		DynEnergy:   dynEnergy,
		LeakEnergy:  leakEnergy,
		Energy:      energy,
		Power:       energy / runtime,
		Area:        area,
		Utilization: util,
		FusedOps:    fusedOps,
	}, slots, nil
}

// equivalenceDesigns spans every design axis, including the asymmetric
// memory-bank and explicit-clock knobs the grid sweeps leave at defaults.
func equivalenceDesigns() []Design {
	var ds []Design
	for _, node := range []float64{45, 22, 10, 5} {
		for _, fusion := range []bool{false, true} {
			for _, s := range []int{1, 4, 7, 13} {
				for _, p := range []int{1, 4, 64, 4096} {
					ds = append(ds, Design{NodeNM: node, Partition: p, Simplification: s, Fusion: fusion})
				}
			}
		}
	}
	ds = append(ds,
		Design{NodeNM: 16, Partition: 64, Simplification: 2, Fusion: true, MemoryBanks: 2},
		Design{NodeNM: 16, Partition: 8, Simplification: 1, Fusion: false, MemoryBanks: 128},
		Design{NodeNM: 7, Partition: 32, Simplification: 5, Fusion: true, ClockGHz: 2.5},
		Design{NodeNM: 45, Partition: 16, Simplification: 9, Fusion: true, ClockGHz: 0.5, MemoryBanks: 3},
	)
	return ds
}

// TestCompiledMatchesReference asserts that the compiled engine reproduces
// the pre-split scheduler bit for bit — same Result, same Schedule slots —
// for every Table IV workload across the design axes. One Compiled instance
// is reused across all designs of a workload, so the test also exercises
// scratch-buffer reuse between calls.
func TestCompiledMatchesReference(t *testing.T) {
	for _, spec := range workloads.All() {
		spec := spec
		t.Run(spec.Abbrev, func(t *testing.T) {
			g, err := spec.Build(0)
			if err != nil {
				t.Fatal(err)
			}
			c, err := Compile(g)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range equivalenceDesigns() {
				want, wantSlots, err := referenceSimulate(g, d, true)
				if err != nil {
					t.Fatal(err)
				}
				got, err := c.Simulate(d)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("design %+v:\ncompiled  %+v\nreference %+v", d, got, want)
				}
				sched, err := c.Trace(d)
				if err != nil {
					t.Fatal(err)
				}
				if sched.Result != want {
					t.Fatalf("design %+v: Trace result %+v != reference %+v", d, sched.Result, want)
				}
				// Reference slots are in node-ID order; Trace sorts by
				// (Start, ID). Compare as sets keyed by ID.
				byID := make(map[dfg.NodeID]OpSlot, len(wantSlots))
				for _, s := range wantSlots {
					byID[s.ID] = s
				}
				if len(sched.Slots) != len(wantSlots) {
					t.Fatalf("design %+v: %d slots, reference %d", d, len(sched.Slots), len(wantSlots))
				}
				for _, s := range sched.Slots {
					if byID[s.ID] != s {
						t.Fatalf("design %+v: slot %+v != reference %+v", d, s, byID[s.ID])
					}
				}
			}
		})
	}
}

// TestWrappersMatchCompiled pins the compatibility wrappers to the
// compiled path they delegate to.
func TestWrappersMatchCompiled(t *testing.T) {
	g := mustBuild(t, "RED", 64)
	c, err := Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	d := Design{NodeNM: 7, Partition: 8, Simplification: 2, Fusion: true}
	rw, err := Simulate(g, d)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := c.Simulate(d)
	if err != nil {
		t.Fatal(err)
	}
	if rw != rc {
		t.Fatalf("Simulate wrapper %+v != Compiled.Simulate %+v", rw, rc)
	}
	sw, err := Trace(g, d)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := c.Trace(d)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sw, sc) {
		t.Fatal("Trace wrapper and Compiled.Trace disagree")
	}
}

// TestCompiledErrors mirrors the wrapper error contract.
func TestCompiledErrors(t *testing.T) {
	if _, err := Compile(nil); err == nil {
		t.Error("Compile(nil) should error")
	}
	g := mustBuild(t, "RED", 8)
	c, err := Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	bad := []Design{
		{NodeNM: 45, Partition: 0, Simplification: 1},
		{NodeNM: 45, Partition: 1, Simplification: 0},
		{NodeNM: 45, Partition: 1, Simplification: 1, ClockGHz: -1},
		{NodeNM: 1234, Partition: 1, Simplification: 1},
		{NodeNM: 45, Partition: 1, Simplification: 1, MemoryBanks: -1},
	}
	for i, d := range bad {
		if _, err := c.Simulate(d); err == nil {
			t.Errorf("design %d should be rejected", i)
		}
		if _, err := c.Trace(d); err == nil {
			t.Errorf("design %d should be rejected by Trace", i)
		}
		if _, err := c.CriticalPathCycles(d); err == nil {
			t.Errorf("design %d should be rejected by CriticalPathCycles", i)
		}
	}
}

// TestCompiledCriticalPath pins the compiled critical-path bound to the
// graph-walking one.
func TestCompiledCriticalPath(t *testing.T) {
	spec, err := workloads.ByAbbrev("FFT")
	if err != nil {
		t.Fatal(err)
	}
	g, err := spec.Build(0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []int{1, 5, 9, 13} {
		d := Design{NodeNM: 22, Partition: 4, Simplification: s}
		want, err := CriticalPathCycles(g, d)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.CriticalPathCycles(d)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("simplification %d: compiled bound %d, reference %d", s, got, want)
		}
	}
}

// TestExtraClassesCoverRange pins numExtraClasses to extraLatency: every
// legal simplification degree must map to a precomputed priority class.
func TestExtraClassesCoverRange(t *testing.T) {
	for s := 1; s <= MaxSimplification; s++ {
		if e := extraLatency(s); e < 0 || e >= numExtraClasses {
			t.Fatalf("extraLatency(%d) = %d outside [0, %d)", s, e, numExtraClasses)
		}
	}
	if extraLatency(MaxSimplification) != numExtraClasses-1 {
		t.Errorf("numExtraClasses = %d is not tight for extraLatency(%d) = %d",
			numExtraClasses, MaxSimplification, extraLatency(MaxSimplification))
	}
}

// TestCompiledConcurrent hammers one shared *Compiled from many goroutines
// mixing Simulate and Trace across priority classes; run with -race this
// is the engine's thread-safety proof. Every goroutine checks its results
// against serially precomputed expectations.
func TestCompiledConcurrent(t *testing.T) {
	spec, err := workloads.ByAbbrev("S3D")
	if err != nil {
		t.Fatal(err)
	}
	g, err := spec.Build(0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	designs := equivalenceDesigns()
	want := make([]Result, len(designs))
	for i, d := range designs {
		r, _, err := referenceSimulate(g, d, false)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}
	const goroutines = 16
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for w := 0; w < goroutines; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				for i := range designs {
					// Stagger the order per goroutine so pool reuse
					// interleaves different designs.
					i := (i + w) % len(designs)
					if w%2 == 0 {
						got, err := c.Simulate(designs[i])
						if err != nil {
							errc <- err
							return
						}
						if got != want[i] {
							errc <- fmt.Errorf("goroutine %d design %d: %+v != %+v", w, i, got, want[i])
							return
						}
					} else {
						sched, err := c.Trace(designs[i])
						if err != nil {
							errc <- err
							return
						}
						if sched.Result != want[i] {
							errc <- fmt.Errorf("goroutine %d design %d: trace %+v != %+v", w, i, sched.Result, want[i])
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
