package aladdin

import (
	"strings"
	"testing"

	"accelwall/internal/workloads"
)

func TestTraceMatchesSimulate(t *testing.T) {
	spec, err := workloads.ByAbbrev("GMM")
	if err != nil {
		t.Fatal(err)
	}
	g, err := spec.Build(4)
	if err != nil {
		t.Fatal(err)
	}
	d := design(16, 32, 3, true)
	r, err := Simulate(g, d)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := Trace(g, d)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Result.Cycles != r.Cycles || sched.Result.Energy != r.Energy {
		t.Errorf("Trace result diverged from Simulate: %+v vs %+v", sched.Result, r)
	}
	if len(sched.Slots) != g.ComputeStats().VCmp {
		t.Errorf("slots = %d, want one per compute op (%d)", len(sched.Slots), g.ComputeStats().VCmp)
	}
	// Slots are ordered by start cycle.
	for i := 1; i < len(sched.Slots); i++ {
		if sched.Slots[i].Start < sched.Slots[i-1].Start {
			t.Fatal("slots not ordered by start cycle")
		}
	}
}

// Every schedule the simulator produces must satisfy its own structural
// validator across the knob space — dependence ordering, lane limits, and
// bank limits.
func TestScheduleValidates(t *testing.T) {
	for _, app := range []string{"RED", "AES", "SMV", "TRD"} {
		spec, err := workloads.ByAbbrev(app)
		if err != nil {
			t.Fatal(err)
		}
		g, err := spec.Build(16)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range []Design{
			design(45, 1, 1, false),
			design(45, 8, 1, false),
			design(7, 64, 5, true),
			{NodeNM: 16, Partition: 128, Simplification: 2, Fusion: true, MemoryBanks: 2},
		} {
			sched, err := Trace(g, d)
			if err != nil {
				t.Fatalf("%s %+v: %v", app, d, err)
			}
			if err := sched.Validate(g, d); err != nil {
				t.Errorf("%s %+v: invalid schedule: %v", app, d, err)
			}
		}
	}
}

func TestScheduleValidateCatchesCorruption(t *testing.T) {
	spec, err := workloads.ByAbbrev("RED")
	if err != nil {
		t.Fatal(err)
	}
	g, err := spec.Build(8)
	if err != nil {
		t.Fatal(err)
	}
	d := design(45, 2, 1, false)
	sched, err := Trace(g, d)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a dependence: move the last op before everything.
	bad := sched
	bad.Slots = append([]OpSlot(nil), sched.Slots...)
	last := &bad.Slots[len(bad.Slots)-1]
	last.Start, last.Finish = 0, 1
	if err := bad.Validate(g, d); err == nil {
		t.Error("validator missed a dependence violation")
	}
	// Duplicate an op.
	dup := sched
	dup.Slots = append(append([]OpSlot(nil), sched.Slots...), sched.Slots[0])
	if err := dup.Validate(g, d); err == nil {
		t.Error("validator missed a duplicated op")
	}
	// Drop an op.
	short := sched
	short.Slots = sched.Slots[:len(sched.Slots)-1]
	if err := short.Validate(g, d); err == nil {
		t.Error("validator missed a missing op")
	}
	// Nil graph.
	if err := sched.Validate(nil, d); err == nil {
		t.Error("validator accepted nil graph")
	}
}

func TestTraceErrors(t *testing.T) {
	if _, err := Trace(nil, design(45, 1, 1, false)); err == nil {
		t.Error("nil graph should error")
	}
}

func TestWriteGantt(t *testing.T) {
	spec, err := workloads.ByAbbrev("RED")
	if err != nil {
		t.Fatal(err)
	}
	g, err := spec.Build(8)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := Trace(g, design(5, 4, 1, true))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := sched.WriteGantt(&sb, 5); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Count(out, "\n") != 5 {
		t.Errorf("Gantt should show 5 lines:\n%s", out)
	}
	if !strings.Contains(out, "cycles") {
		t.Errorf("Gantt output malformed:\n%s", out)
	}
	// maxOps <= 0 prints everything.
	sb.Reset()
	if err := sched.WriteGantt(&sb, 0); err != nil {
		t.Fatal(err)
	}
	if strings.Count(sb.String(), "\n") != len(sched.Slots) {
		t.Error("Gantt with maxOps=0 should print all slots")
	}
}
