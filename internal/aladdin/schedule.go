package aladdin

import (
	"errors"
	"fmt"
	"io"

	"accelwall/internal/dfg"
)

// OpSlot records when one operation executed in a schedule.
type OpSlot struct {
	ID      dfg.NodeID
	Op      dfg.Op
	Start   int
	Finish  int
	Chained bool // issued inside a predecessor's cycle via fusion
}

// Schedule is the full per-operation timing of one simulation, for
// inspection, visualization, and schedule-level testing. It is produced by
// Trace, which runs the same scheduler as Simulate.
type Schedule struct {
	Result Result
	Slots  []OpSlot // compute operations only, ordered by (Start, ID)
}

// Trace simulates the graph like Simulate but additionally returns the
// per-operation schedule. Like Simulate it is a compatibility wrapper that
// compiles the graph per call; repeated traces of one graph should go
// through Compile and Compiled.Trace. Slot capture is a flag on the one
// compiled scheduling core, not a second scheduler.
func Trace(g *dfg.Graph, d Design) (Schedule, error) {
	c, err := Compile(g)
	if err != nil {
		return Schedule{}, err
	}
	return c.Trace(d)
}

// Validate checks the structural invariants of a schedule against its
// graph: every compute op appears exactly once, no op starts before its
// operands are available (chained ops may share their producer's cycle),
// and per-cycle lane/bank limits hold.
func (s Schedule) Validate(g *dfg.Graph, d Design) error {
	if g == nil {
		return errors.New("aladdin: nil graph")
	}
	if d.ClockGHz == 0 {
		d.ClockGHz = 1
	}
	banks := d.MemoryBanks
	if banks == 0 {
		banks = d.Partition
	}
	byID := make(map[dfg.NodeID]OpSlot, len(s.Slots))
	laneUse := make(map[int]int)
	bankUse := make(map[int]int)
	for _, slot := range s.Slots {
		if _, dup := byID[slot.ID]; dup {
			return fmt.Errorf("aladdin: op %d scheduled twice", slot.ID)
		}
		byID[slot.ID] = slot
		if !slot.Chained {
			laneUse[slot.Start]++
			if slot.Op == dfg.OpLoad || slot.Op == dfg.OpStore {
				bankUse[slot.Start]++
			}
		}
	}
	compute := 0
	for _, nd := range g.Nodes() {
		if !nd.Op.IsCompute() {
			continue
		}
		compute++
		slot, ok := byID[nd.ID]
		if !ok {
			return fmt.Errorf("aladdin: op %d missing from schedule", nd.ID)
		}
		for _, p := range g.Preds(nd.ID) {
			ps, isOp := byID[p]
			if !isOp {
				continue // input vertex: available at cycle 0
			}
			if slot.Chained {
				if slot.Start < ps.Start {
					return fmt.Errorf("aladdin: chained op %d starts before producer %d", nd.ID, p)
				}
				continue
			}
			if slot.Start < ps.Finish {
				return fmt.Errorf("aladdin: op %d starts at %d before operand %d finishes at %d",
					nd.ID, slot.Start, p, ps.Finish)
			}
		}
	}
	if compute != len(s.Slots) {
		return fmt.Errorf("aladdin: schedule has %d slots for %d compute ops", len(s.Slots), compute)
	}
	for cycle, used := range laneUse {
		if used > d.Partition {
			return fmt.Errorf("aladdin: cycle %d uses %d lanes of %d", cycle, used, d.Partition)
		}
	}
	for cycle, used := range bankUse {
		if used > banks {
			return fmt.Errorf("aladdin: cycle %d uses %d bank ports of %d", cycle, used, banks)
		}
	}
	return nil
}

// WriteGantt emits a compact textual Gantt chart of the schedule's first
// maxOps operations, one line per op.
func (s Schedule) WriteGantt(w io.Writer, maxOps int) error {
	if maxOps <= 0 || maxOps > len(s.Slots) {
		maxOps = len(s.Slots)
	}
	for _, slot := range s.Slots[:maxOps] {
		mark := ""
		if slot.Chained {
			mark = " (chained)"
		}
		if _, err := fmt.Fprintf(w, "op %-5d %-9s cycles %d..%d%s\n",
			slot.ID, slot.Op, slot.Start, slot.Finish, mark); err != nil {
			return err
		}
	}
	return nil
}
