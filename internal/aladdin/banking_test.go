package aladdin

import (
	"testing"

	"accelwall/internal/dfg"
	"accelwall/internal/workloads"
)

// TRD is a streaming kernel: two loads per element. With a wide datapath
// but a single memory bank, the memory system must serialize it.
func TestMemoryBankBottleneck(t *testing.T) {
	spec, err := workloads.ByAbbrev("TRD")
	if err != nil {
		t.Fatal(err)
	}
	g, err := spec.Build(64)
	if err != nil {
		t.Fatal(err)
	}
	wide := Design{NodeNM: 45, Partition: 4096, Simplification: 1}
	narrow := wide
	narrow.MemoryBanks = 1
	rWide, err := Simulate(g, wide)
	if err != nil {
		t.Fatal(err)
	}
	rNarrow, err := Simulate(g, narrow)
	if err != nil {
		t.Fatal(err)
	}
	// 64 elements × 3 memory ops each (2 loads + 1 store) through one bank
	// port need at least 192 issue cycles.
	if rNarrow.Cycles < 192 {
		t.Errorf("single-bank schedule = %d cycles, want >= 192 (memory serialized)", rNarrow.Cycles)
	}
	if rWide.Cycles >= rNarrow.Cycles {
		t.Errorf("banked design (%d cycles) should beat single bank (%d)", rWide.Cycles, rNarrow.Cycles)
	}
}

// More banks never slow a schedule down, and beyond the workload's memory
// parallelism they plateau.
func TestMemoryBanksMonotone(t *testing.T) {
	spec, err := workloads.ByAbbrev("SMV")
	if err != nil {
		t.Fatal(err)
	}
	g, err := spec.Build(16)
	if err != nil {
		t.Fatal(err)
	}
	prev := 1 << 30
	var plateau int
	for _, banks := range []int{1, 2, 4, 16, 256, 4096} {
		r, err := Simulate(g, Design{NodeNM: 45, Partition: 4096, Simplification: 1, MemoryBanks: banks})
		if err != nil {
			t.Fatal(err)
		}
		if r.Cycles > prev {
			t.Errorf("banks %d: cycles grew %d -> %d", banks, prev, r.Cycles)
		}
		prev = r.Cycles
		plateau = r.Cycles
	}
	unconstrained, err := Simulate(g, Design{NodeNM: 45, Partition: 4096, Simplification: 1})
	if err != nil {
		t.Fatal(err)
	}
	if plateau != unconstrained.Cycles {
		t.Errorf("huge bank count (%d cycles) should match banks=partition (%d)", plateau, unconstrained.Cycles)
	}
}

// Banks contribute area: a memory-heavy bank provision must cost more.
func TestMemoryBanksAddArea(t *testing.T) {
	spec, err := workloads.ByAbbrev("RED")
	if err != nil {
		t.Fatal(err)
	}
	g, err := spec.Build(64)
	if err != nil {
		t.Fatal(err)
	}
	few, err := Simulate(g, Design{NodeNM: 45, Partition: 8, Simplification: 1, MemoryBanks: 1})
	if err != nil {
		t.Fatal(err)
	}
	many, err := Simulate(g, Design{NodeNM: 45, Partition: 8, Simplification: 1, MemoryBanks: 512})
	if err != nil {
		t.Fatal(err)
	}
	if many.Area <= few.Area {
		t.Errorf("512 banks area %g should exceed 1 bank area %g", many.Area, few.Area)
	}
}

func TestMemoryBanksValidation(t *testing.T) {
	bad := Design{NodeNM: 45, Partition: 1, Simplification: 1, MemoryBanks: -1}
	if err := bad.Validate(); err == nil {
		t.Error("negative banks should be invalid")
	}
	bad.MemoryBanks = MaxPartition + 1
	if err := bad.Validate(); err == nil {
		t.Error("excessive banks should be invalid")
	}
}

// Cross-check between the two heterogeneity implementations: scheduling
// the FuseChains-transformed graph without chaining must not beat (in
// cycles) the chained schedule of the original graph by more than the
// conservative-grouping slack, and both must beat the unfused baseline on
// a chain-heavy kernel.
func TestFusionTransformVsSchedulerChaining(t *testing.T) {
	spec, err := workloads.ByAbbrev("AES")
	if err != nil {
		t.Fatal(err)
	}
	g, err := spec.Build(2)
	if err != nil {
		t.Fatal(err)
	}
	window := 4
	fusedGraph, absorbed, err := dfg.FuseChains(g, window)
	if err != nil {
		t.Fatal(err)
	}
	if absorbed == 0 {
		t.Fatal("AES should have fusable chains")
	}
	base := Design{NodeNM: 10, Partition: MaxPartition, Simplification: 1} // window(10nm) = 4
	plain, err := Simulate(g, base)
	if err != nil {
		t.Fatal(err)
	}
	chainedDesign := base
	chainedDesign.Fusion = true
	chained, err := Simulate(g, chainedDesign)
	if err != nil {
		t.Fatal(err)
	}
	transformed, err := Simulate(fusedGraph, base)
	if err != nil {
		t.Fatal(err)
	}
	if chained.Cycles >= plain.Cycles {
		t.Errorf("scheduler chaining did not help: %d vs %d", chained.Cycles, plain.Cycles)
	}
	if transformed.Cycles >= plain.Cycles {
		t.Errorf("graph fusion did not help: %d vs %d", transformed.Cycles, plain.Cycles)
	}
	// The scheduler's chaining is at least as aggressive as the
	// conservative graph transform.
	if chained.Cycles > transformed.Cycles {
		t.Errorf("scheduler chaining (%d cycles) should not lose to the conservative transform (%d)",
			chained.Cycles, transformed.Cycles)
	}
}
