//go:build !race

package aladdin

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
