// Package aladdin implements the pre-RTL accelerator simulator used for the
// specialization design-space exploration of Section VI.
//
// Like the original Aladdin tool the paper builds on, the simulator takes a
// workload's dataflow graph and an accelerator design point and produces
// pre-RTL estimates of runtime, power, energy, and area. The design knobs
// are exactly the specialization concepts of Section V as swept in
// Table III:
//
//   - Partitioning: the number of replicated datapath/memory lanes, i.e.
//     how many operations may issue per cycle. Swept 1, 2, 4, ... 524288.
//   - Simplification: the degree of datapath/register/communication
//     simplification, 1..13. Higher degrees shave switching energy and
//     leakage area but add pipeline latency ("increased latency due to
//     deep pipelining").
//   - Heterogeneity: operation fusion — chains of dependent single-cycle
//     operations packed into one cycle, with a chain window that widens on
//     faster CMOS nodes ("more computation units are fused and scheduled
//     in a cycle").
//   - CMOS process: the node scales cycle time, per-op switching energy,
//     and leakage through the device model of package cmos.
//
// The scheduler is a longest-path-first list scheduler over the DFG:
// operations issue when their operands are ready and a lane is free;
// functional units are fully pipelined. Runtime, dynamic energy, leakage
// energy, power, and area fall out of the schedule; all values are in
// consistent model units (cycle time in ns, energy in adder-cell units), so
// ratios across design points — the only quantity the study consumes — are
// meaningful.
package aladdin

import (
	"errors"
	"fmt"
	"math"

	"accelwall/internal/cmos"
	"accelwall/internal/dfg"
)

// Table III sweep bounds.
const (
	MaxPartition      = 524288
	MaxSimplification = 13
)

// leakPerAreaNS calibrates leakage: static power per area unit (in
// adder-cell units) per nanosecond at the 45 nm reference node. The value
// puts baseline leakage near 20% of dynamic power, the regime mid-2000s
// accelerators operated in.
const leakPerAreaNS = 0.002

// regArea is the storage area (registers/SRAM cells) provisioned per
// working-set variable, in adder-cell units.
const regArea = 0.5

// bankArea is the interface area of one memory bank (decoder, sense
// amplifiers, port wiring), in adder-cell units.
const bankArea = 2.0

// fusedEnergyScale discounts the switching energy of a chained operation:
// fusion removes its pipeline-register and control overhead.
const fusedEnergyScale = 0.9

// Design is one accelerator design point.
type Design struct {
	NodeNM         float64 // CMOS process node, nm
	Partition      int     // lanes: operations issued per cycle (>= 1)
	Simplification int     // simplification degree, 1..13
	Fusion         bool    // heterogeneity: enable operation chaining
	ClockGHz       float64 // reference clock at 45 nm; 0 selects 1 GHz
	// MemoryBanks bounds concurrent memory operations (loads/stores) per
	// cycle — the memory-partitioning concept of Table I. Zero means
	// "banked with the datapath": banks equal the partition factor, which
	// is how the original Aladdin flow couples memory banking to
	// unrolling. Explicit values model asymmetric designs (wide datapath
	// on a narrow memory system and vice versa).
	MemoryBanks int
}

// Validate reports the first problem with the design point.
func (d Design) Validate() error {
	if d.Partition < 1 || d.Partition > MaxPartition {
		return fmt.Errorf("aladdin: partition factor %d outside [1, %d]", d.Partition, MaxPartition)
	}
	if d.Simplification < 1 || d.Simplification > MaxSimplification {
		return fmt.Errorf("aladdin: simplification degree %d outside [1, %d]", d.Simplification, MaxSimplification)
	}
	if d.ClockGHz < 0 {
		return fmt.Errorf("aladdin: negative clock %g", d.ClockGHz)
	}
	if d.MemoryBanks < 0 || d.MemoryBanks > MaxPartition {
		return fmt.Errorf("aladdin: memory banks %d outside [0, %d]", d.MemoryBanks, MaxPartition)
	}
	if _, err := cmos.Lookup(d.NodeNM); err != nil {
		return err
	}
	return nil
}

// energyScale returns the per-op switching-energy factor of a
// simplification degree: each degree narrows datapaths and registers for a
// compounding 8% saving.
func energyScale(deg int) float64 { return math.Pow(0.92, float64(deg-1)) }

// areaScale returns the unit-area factor of a simplification degree.
func areaScale(deg int) float64 { return math.Pow(0.94, float64(deg-1)) }

// extraLatency returns the pipeline-depth penalty of a simplification
// degree in cycles, added to every operation. This is the "diminishing
// returns (i.e., increased latency due to deep pipelining)" at high
// degrees.
func extraLatency(deg int) int { return (deg - 1) / 4 }

// fusionWindow returns how many dependent single-cycle operations fit in
// one cycle on the node: faster transistors chain deeper. Without fusion
// the window is 1 (no chaining).
func fusionWindow(node cmos.Node, fusion bool) int {
	if !fusion {
		return 1
	}
	w := int(node.Freq * 2)
	if w < 1 {
		w = 1
	}
	return w
}

// Result is the simulator's estimate for one (workload, design) pair.
type Result struct {
	Design Design

	Cycles      int     // schedule length
	RuntimeNS   float64 // Cycles × cycle time
	DynEnergy   float64 // switching energy, adder-cell units
	LeakEnergy  float64 // static energy over the runtime
	Energy      float64 // DynEnergy + LeakEnergy
	Power       float64 // Energy / RuntimeNS
	Area        float64 // lanes + storage, adder-cell units
	Utilization float64 // issued ops / (lanes × cycles)
	FusedOps    int     // operations that issued by chaining
}

// Throughput returns kernel executions per nanosecond — the performance
// target function of the sweep.
func (r Result) Throughput() float64 { return 1 / r.RuntimeNS }

// EnergyEfficiency returns kernel executions per energy unit — the
// efficiency target function of the sweep.
func (r Result) EnergyEfficiency() float64 { return 1 / r.Energy }

// item is a ready operation in the scheduler's priority queue.
type item struct {
	id       dfg.NodeID
	earliest int // earliest issue cycle (all operands ready)
	priority int // length of the longest downstream path (critical path first)
}

type readyQueue []item

func (q readyQueue) Len() int { return len(q) }
func (q readyQueue) Less(i, j int) bool {
	if q[i].earliest != q[j].earliest {
		return q[i].earliest < q[j].earliest
	}
	if q[i].priority != q[j].priority {
		return q[i].priority > q[j].priority
	}
	return q[i].id < q[j].id
}
func (q readyQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *readyQueue) Push(x any)   { *q = append(*q, x.(item)) }
func (q *readyQueue) Pop() any     { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }

// Simulate schedules the graph onto the design point and returns the
// pre-RTL estimates. The graph must be valid (workload builders guarantee
// this); the design is validated here.
//
// Simulate is a compatibility wrapper that compiles the graph on every
// call. Sweeps that evaluate many design points on one graph should call
// Compile once and use Compiled.Simulate, which amortizes the graph
// analysis and reuses pooled scheduling buffers across points.
func Simulate(g *dfg.Graph, d Design) (Result, error) {
	c, err := Compile(g)
	if err != nil {
		return Result{}, err
	}
	return c.Simulate(d)
}

// CriticalPathCycles returns the schedule-independent lower bound on cycles
// for the graph under a design's latency model: the longest latency path.
// Partitioning can never beat it; the sweep uses it to find the taper point.
func CriticalPathCycles(g *dfg.Graph, d Design) (int, error) {
	if g == nil {
		return 0, errors.New("aladdin: nil graph")
	}
	if err := d.Validate(); err != nil {
		return 0, err
	}
	extra := extraLatency(d.Simplification)
	nodes := g.Nodes()
	dist := make([]int, len(nodes))
	best := 0
	for _, nd := range nodes {
		lat := 0
		if nd.Op.IsCompute() {
			lat = nd.Op.Latency() + extra
		}
		d0 := 0
		for _, p := range g.Preds(nd.ID) {
			if dist[p] > d0 {
				d0 = dist[p]
			}
		}
		dist[nd.ID] = d0 + lat
		if dist[nd.ID] > best {
			best = dist[nd.ID]
		}
	}
	return best, nil
}
