// Package aladdin implements the pre-RTL accelerator simulator used for the
// specialization design-space exploration of Section VI.
//
// Like the original Aladdin tool the paper builds on, the simulator takes a
// workload's dataflow graph and an accelerator design point and produces
// pre-RTL estimates of runtime, power, energy, and area. The design knobs
// are exactly the specialization concepts of Section V as swept in
// Table III:
//
//   - Partitioning: the number of replicated datapath/memory lanes, i.e.
//     how many operations may issue per cycle. Swept 1, 2, 4, ... 524288.
//   - Simplification: the degree of datapath/register/communication
//     simplification, 1..13. Higher degrees shave switching energy and
//     leakage area but add pipeline latency ("increased latency due to
//     deep pipelining").
//   - Heterogeneity: operation fusion — chains of dependent single-cycle
//     operations packed into one cycle, with a chain window that widens on
//     faster CMOS nodes ("more computation units are fused and scheduled
//     in a cycle").
//   - CMOS process: the node scales cycle time, per-op switching energy,
//     and leakage through the device model of package cmos.
//
// The scheduler is a longest-path-first list scheduler over the DFG:
// operations issue when their operands are ready and a lane is free;
// functional units are fully pipelined. Runtime, dynamic energy, leakage
// energy, power, and area fall out of the schedule; all values are in
// consistent model units (cycle time in ns, energy in adder-cell units), so
// ratios across design points — the only quantity the study consumes — are
// meaningful.
package aladdin

import (
	"container/heap"
	"errors"
	"fmt"
	"math"

	"accelwall/internal/cmos"
	"accelwall/internal/dfg"
)

// Table III sweep bounds.
const (
	MaxPartition      = 524288
	MaxSimplification = 13
)

// leakPerAreaNS calibrates leakage: static power per area unit (in
// adder-cell units) per nanosecond at the 45 nm reference node. The value
// puts baseline leakage near 20% of dynamic power, the regime mid-2000s
// accelerators operated in.
const leakPerAreaNS = 0.002

// regArea is the storage area (registers/SRAM cells) provisioned per
// working-set variable, in adder-cell units.
const regArea = 0.5

// bankArea is the interface area of one memory bank (decoder, sense
// amplifiers, port wiring), in adder-cell units.
const bankArea = 2.0

// fusedEnergyScale discounts the switching energy of a chained operation:
// fusion removes its pipeline-register and control overhead.
const fusedEnergyScale = 0.9

// Design is one accelerator design point.
type Design struct {
	NodeNM         float64 // CMOS process node, nm
	Partition      int     // lanes: operations issued per cycle (>= 1)
	Simplification int     // simplification degree, 1..13
	Fusion         bool    // heterogeneity: enable operation chaining
	ClockGHz       float64 // reference clock at 45 nm; 0 selects 1 GHz
	// MemoryBanks bounds concurrent memory operations (loads/stores) per
	// cycle — the memory-partitioning concept of Table I. Zero means
	// "banked with the datapath": banks equal the partition factor, which
	// is how the original Aladdin flow couples memory banking to
	// unrolling. Explicit values model asymmetric designs (wide datapath
	// on a narrow memory system and vice versa).
	MemoryBanks int
}

// Validate reports the first problem with the design point.
func (d Design) Validate() error {
	if d.Partition < 1 || d.Partition > MaxPartition {
		return fmt.Errorf("aladdin: partition factor %d outside [1, %d]", d.Partition, MaxPartition)
	}
	if d.Simplification < 1 || d.Simplification > MaxSimplification {
		return fmt.Errorf("aladdin: simplification degree %d outside [1, %d]", d.Simplification, MaxSimplification)
	}
	if d.ClockGHz < 0 {
		return fmt.Errorf("aladdin: negative clock %g", d.ClockGHz)
	}
	if d.MemoryBanks < 0 || d.MemoryBanks > MaxPartition {
		return fmt.Errorf("aladdin: memory banks %d outside [0, %d]", d.MemoryBanks, MaxPartition)
	}
	if _, err := cmos.Lookup(d.NodeNM); err != nil {
		return err
	}
	return nil
}

// energyScale returns the per-op switching-energy factor of a
// simplification degree: each degree narrows datapaths and registers for a
// compounding 8% saving.
func energyScale(deg int) float64 { return math.Pow(0.92, float64(deg-1)) }

// areaScale returns the unit-area factor of a simplification degree.
func areaScale(deg int) float64 { return math.Pow(0.94, float64(deg-1)) }

// extraLatency returns the pipeline-depth penalty of a simplification
// degree in cycles, added to every operation. This is the "diminishing
// returns (i.e., increased latency due to deep pipelining)" at high
// degrees.
func extraLatency(deg int) int { return (deg - 1) / 4 }

// fusionWindow returns how many dependent single-cycle operations fit in
// one cycle on the node: faster transistors chain deeper. Without fusion
// the window is 1 (no chaining).
func fusionWindow(node cmos.Node, fusion bool) int {
	if !fusion {
		return 1
	}
	w := int(node.Freq * 2)
	if w < 1 {
		w = 1
	}
	return w
}

// Result is the simulator's estimate for one (workload, design) pair.
type Result struct {
	Design Design

	Cycles      int     // schedule length
	RuntimeNS   float64 // Cycles × cycle time
	DynEnergy   float64 // switching energy, adder-cell units
	LeakEnergy  float64 // static energy over the runtime
	Energy      float64 // DynEnergy + LeakEnergy
	Power       float64 // Energy / RuntimeNS
	Area        float64 // lanes + storage, adder-cell units
	Utilization float64 // issued ops / (lanes × cycles)
	FusedOps    int     // operations that issued by chaining
}

// Throughput returns kernel executions per nanosecond — the performance
// target function of the sweep.
func (r Result) Throughput() float64 { return 1 / r.RuntimeNS }

// EnergyEfficiency returns kernel executions per energy unit — the
// efficiency target function of the sweep.
func (r Result) EnergyEfficiency() float64 { return 1 / r.Energy }

// item is a ready operation in the scheduler's priority queue.
type item struct {
	id       dfg.NodeID
	earliest int // earliest issue cycle (all operands ready)
	priority int // length of the longest downstream path (critical path first)
}

type readyQueue []item

func (q readyQueue) Len() int { return len(q) }
func (q readyQueue) Less(i, j int) bool {
	if q[i].earliest != q[j].earliest {
		return q[i].earliest < q[j].earliest
	}
	if q[i].priority != q[j].priority {
		return q[i].priority > q[j].priority
	}
	return q[i].id < q[j].id
}
func (q readyQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *readyQueue) Push(x any)   { *q = append(*q, x.(item)) }
func (q *readyQueue) Pop() any     { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }

// Simulate schedules the graph onto the design point and returns the
// pre-RTL estimates. The graph must be valid (workload builders guarantee
// this); the design is validated here.
func Simulate(g *dfg.Graph, d Design) (Result, error) {
	res, _, err := simulate(g, d, false)
	return res, err
}

// simulate is the shared scheduling core behind Simulate and Trace; with
// capture set it records per-operation slots.
func simulate(g *dfg.Graph, d Design, capture bool) (Result, []OpSlot, error) {
	if g == nil {
		return Result{}, nil, errors.New("aladdin: nil graph")
	}
	if err := d.Validate(); err != nil {
		return Result{}, nil, err
	}
	if d.ClockGHz == 0 {
		d.ClockGHz = 1
	}
	node := cmos.MustLookup(d.NodeNM)
	window := fusionWindow(node, d.Fusion)
	extra := extraLatency(d.Simplification)
	banks := d.MemoryBanks
	if banks == 0 {
		banks = d.Partition
	}

	nodes := g.Nodes()
	n := len(nodes)
	latency := make([]int, n)
	for _, nd := range nodes {
		if nd.Op.IsCompute() {
			latency[nd.ID] = nd.Op.Latency() + extra
		}
	}
	// Critical-path priorities: longest downstream latency sum, computed in
	// reverse topological order.
	prio := make([]int, n)
	for i := n - 1; i >= 0; i-- {
		id := nodes[i].ID
		best := 0
		for _, s := range g.Succs(id) {
			if p := prio[s]; p > best {
				best = p
			}
		}
		prio[id] = best + latency[id]
	}

	start := make([]int, n)
	finish := make([]int, n)
	chain := make([]int, n) // chained ops executed in the same cycle so far
	pendingPreds := make([]int, n)
	scheduled := make([]bool, n)
	var q readyQueue
	for _, nd := range nodes {
		pendingPreds[nd.ID] = len(g.Preds(nd.ID))
	}
	for _, nd := range nodes {
		if pendingPreds[nd.ID] != 0 {
			continue
		}
		// Inputs are available at cycle 0.
		scheduled[nd.ID] = true
		start[nd.ID], finish[nd.ID], chain[nd.ID] = 0, 0, 0
		for _, s := range g.Succs(nd.ID) {
			pendingPreds[s]--
			if pendingPreds[s] == 0 {
				heap.Push(&q, item{id: s, earliest: 0, priority: prio[s]})
			}
		}
	}

	// release computes the issue constraints of an op whose operands are
	// all scheduled: the earliest cycle it can issue normally, and — when
	// chaining applies — the cycle and chain depth it could ride.
	cheap := func(id dfg.NodeID) bool {
		return nodes[id].Op.IsCompute() && nodes[id].Op.Latency() == 1
	}

	maxCycle := 0
	issuedAt := make(map[int]int)    // cycle -> lanes used
	memIssuedAt := make(map[int]int) // cycle -> memory bank ports used
	issuedOps := 0
	fusedOps := 0

	for q.Len() > 0 {
		it := heap.Pop(&q).(item)
		id := it.id
		if nodes[id].Op == dfg.OpOutput {
			// Outputs materialize when their producer finishes; no lane use.
			p := g.Preds(id)[0]
			start[id], finish[id] = finish[p], finish[p]
			scheduled[id] = true
			if finish[id] > maxCycle {
				maxCycle = finish[id]
			}
			continue
		}
		// Earliest normal issue: all operand values available.
		earliest := 0
		for _, p := range g.Preds(id) {
			if finish[p] > earliest {
				earliest = finish[p]
			}
		}
		// Chaining (heterogeneity): a cheap op may issue in the same cycle
		// as cheap predecessors — a combinational cascade — provided every
		// operand is either already finished by that cycle or is itself a
		// same-cycle chain link, and the total cascade depth stays within
		// the node's window. Deep-pipelined designs (extra latency) cannot
		// chain: their units are registered.
		chained := false
		issue := earliest
		if window > 1 && cheap(id) && extra == 0 {
			// Candidate cycle: treat chain-eligible cheap operands as
			// available at their start cycle rather than their finish.
			candidate := 0
			for _, p := range g.Preds(id) {
				a := finish[p]
				if cheap(p) && chain[p]+1 < window {
					a = start[p]
				}
				if a > candidate {
					candidate = a
				}
			}
			if candidate < earliest {
				pos, feasible := 0, true
				for _, p := range g.Preds(id) {
					switch {
					case finish[p] <= candidate:
						// Operand ready before the cycle starts.
					case start[p] == candidate && cheap(p) && chain[p]+1 < window:
						if chain[p]+1 > pos {
							pos = chain[p] + 1
						}
					default:
						feasible = false
					}
				}
				if feasible && pos > 0 {
					chained = true
					issue = candidate
					chain[id] = pos
				}
			}
		}
		isMem := nodes[id].Op == dfg.OpLoad || nodes[id].Op == dfg.OpStore
		if !chained {
			// Find a cycle at or after earliest with a free lane — and,
			// for memory operations, a free bank port.
			for issuedAt[issue] >= d.Partition || (isMem && memIssuedAt[issue] >= banks) {
				issue++
			}
			issuedAt[issue]++
			if isMem {
				memIssuedAt[issue]++
			}
			chain[id] = 0
		} else {
			fusedOps++
		}
		issuedOps++
		start[id] = issue
		if chained {
			// A chained op completes within the shared cycle.
			finish[id] = issue + 1
		} else {
			finish[id] = issue + latency[id]
		}
		scheduled[id] = true
		if finish[id] > maxCycle {
			maxCycle = finish[id]
		}
		for _, s := range g.Succs(id) {
			pendingPreds[s]--
			if pendingPreds[s] == 0 {
				heap.Push(&q, item{id: s, earliest: finish[id], priority: prio[s]})
			}
		}
	}
	for i := range scheduled {
		if !scheduled[i] {
			return Result{}, nil, fmt.Errorf("aladdin: scheduler failed to place vertex %d (graph not validated?)", i)
		}
	}
	if maxCycle < 1 {
		maxCycle = 1
	}

	// Energy, area, power from the schedule.
	eScale := energyScale(d.Simplification) * node.DynEnergy()
	var dynEnergy float64
	for _, nd := range nodes {
		if !nd.Op.IsCompute() {
			continue
		}
		e := nd.Op.Energy() * eScale
		if chain[nd.ID] > 0 {
			e *= fusedEnergyScale
		}
		dynEnergy += e
	}
	stats := g.ComputeStats()
	// Lane area: each lane carries the workload's average functional-unit
	// mix; storage covers the largest working set.
	var mixArea float64
	if stats.VCmp > 0 {
		mixArea = g.TotalArea() / float64(stats.VCmp)
	}
	area := (float64(d.Partition)*mixArea + float64(banks)*bankArea + float64(stats.MaxWS)*regArea) * areaScale(d.Simplification)

	cycleNS := 1 / (d.ClockGHz * node.Freq)
	runtime := float64(maxCycle) * cycleNS
	leakEnergy := leakPerAreaNS * area * node.LeakPower() * runtime
	energy := dynEnergy + leakEnergy

	util := 0.0
	if maxCycle > 0 && d.Partition > 0 {
		util = float64(issuedOps-fusedOps) / (float64(d.Partition) * float64(maxCycle))
	}

	var slots []OpSlot
	if capture {
		slots = make([]OpSlot, 0, issuedOps)
		for _, nd := range nodes {
			if !nd.Op.IsCompute() {
				continue
			}
			slots = append(slots, OpSlot{
				ID:      nd.ID,
				Op:      nd.Op,
				Start:   start[nd.ID],
				Finish:  finish[nd.ID],
				Chained: chain[nd.ID] > 0,
			})
		}
	}
	return Result{
		Design:      d,
		Cycles:      maxCycle,
		RuntimeNS:   runtime,
		DynEnergy:   dynEnergy,
		LeakEnergy:  leakEnergy,
		Energy:      energy,
		Power:       energy / runtime,
		Area:        area,
		Utilization: util,
		FusedOps:    fusedOps,
	}, slots, nil
}

// CriticalPathCycles returns the schedule-independent lower bound on cycles
// for the graph under a design's latency model: the longest latency path.
// Partitioning can never beat it; the sweep uses it to find the taper point.
func CriticalPathCycles(g *dfg.Graph, d Design) (int, error) {
	if g == nil {
		return 0, errors.New("aladdin: nil graph")
	}
	if err := d.Validate(); err != nil {
		return 0, err
	}
	extra := extraLatency(d.Simplification)
	nodes := g.Nodes()
	dist := make([]int, len(nodes))
	best := 0
	for _, nd := range nodes {
		lat := 0
		if nd.Op.IsCompute() {
			lat = nd.Op.Latency() + extra
		}
		d0 := 0
		for _, p := range g.Preds(nd.ID) {
			if dist[p] > d0 {
				d0 = dist[p]
			}
		}
		dist[nd.ID] = d0 + lat
		if dist[nd.ID] > best {
			best = dist[nd.ID]
		}
	}
	return best, nil
}
