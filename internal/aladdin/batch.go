package aladdin

import (
	"fmt"

	"accelwall/internal/cmos"
	"accelwall/internal/faultinject"
)

// SiteLane is the fault-injection seam inside the batch evaluator, hit
// once per lane before the lane's design is simulated. Chaos tests arm it
// to prove a panicking or erroring lane cannot poison its siblings in the
// same batch or leak the shared pooled scratch.
var SiteLane = faultinject.Register("aladdin.lane")

// maxSchedSummaries bounds the per-Compiled schedule-class cache. Table III
// style lattices collapse to on the order of a hundred classes, so 256
// keeps every class of a realistic sweep resident while bounding memory on
// adversarial design streams; replacement is round-robin.
const maxSchedSummaries = 256

// schedKey identifies a schedule class: the complete set of design knobs
// the scheduling walk can observe. Metrics knobs (NodeNM except through
// window, ClockGHz) are deliberately absent — designs differing only in
// them share one walk. The window is normalized to 1 whenever chaining is
// structurally impossible (deep pipelining, or a graph with no single-cycle
// compute op), collapsing those classes together.
type schedKey struct {
	partition int
	banks     int
	extra     int
	window    int
}

// schedSummary is the design-independent outcome of one scheduling walk:
// everything finishResult needs (cycles, op counts, the per-node chained
// flags driving the fused energy discount) plus the saturation facts that
// let the summary stand in for other lane capacities.
//
// The saturation argument: the walk consults partition and banks only in
// the contention probe's two skip branches, and both branches have the
// identical observable effect (advance the candidate cycle by one). A walk
// where the datapath branch never fired (dpSkipped false) would replay
// move-for-move under ANY partition ≥ its high-water per-cycle lane
// occupancy maxLane, because no probe ever observed the capacity; likewise
// for banks/maxMem independently. Summaries are immutable once built.
type schedSummary struct {
	key         schedKey
	cycles      int
	issuedOps   int
	fusedOps    int
	maxLane     int
	maxMem      int
	dpSkipped   bool
	bankSkipped bool
	chained     []bool
}

// matches reports whether a walk under k would be move-for-move identical
// to the walk this summary records. Exact key equality always matches;
// beyond that, each capacity knob may differ independently when this
// summary's walk never saturated it (see the type comment).
func (s *schedSummary) matches(k schedKey) bool {
	if k.extra != s.key.extra || k.window != s.key.window {
		return false
	}
	if k.partition != s.key.partition && (s.dpSkipped || k.partition < s.maxLane) {
		return false
	}
	if k.banks != s.key.banks && (s.bankSkipped || k.banks < s.maxMem) {
		return false
	}
	return true
}

// walkKey derives the schedule class of a design. d must already carry its
// ClockGHz default; banks defaulting is replicated here and in finishResult
// so the key never depends on the caller's spelling.
func (c *Compiled) walkKey(d Design, node cmos.Node) schedKey {
	banks := d.MemoryBanks
	if banks == 0 {
		banks = d.Partition
	}
	extra := extraLatency(d.Simplification)
	window := fusionWindow(node, d.Fusion)
	// Chaining requires a registered-free unit (extra == 0) and at least one
	// single-cycle compute op; otherwise the window is unobservable.
	if extra > 0 || !c.hasCheap {
		window = 1
	}
	return schedKey{partition: d.Partition, banks: banks, extra: extra, window: window}
}

// lookupSched returns a cached summary whose walk is move-for-move
// identical to the key's, or nil.
func (c *Compiled) lookupSched(key schedKey) *schedSummary {
	c.schedMu.RLock()
	defer c.schedMu.RUnlock()
	for _, s := range c.scheds {
		if s.matches(key) {
			c.schedHits.Add(1)
			return s
		}
	}
	return nil
}

// storeSched inserts a freshly walked summary, deduplicating exact keys
// and evicting round-robin once the cache is full.
func (c *Compiled) storeSched(sum *schedSummary) {
	c.schedMu.Lock()
	defer c.schedMu.Unlock()
	for _, s := range c.scheds {
		if s.key == sum.key {
			return
		}
	}
	if len(c.scheds) < maxSchedSummaries {
		c.scheds = append(c.scheds, sum)
		return
	}
	c.scheds[c.schedClock] = sum
	c.schedClock = (c.schedClock + 1) % maxSchedSummaries
}

// ScheduleCacheStats reports how many full scheduling walks the engine has
// executed and how many designs were served from a cached or reused
// schedule summary instead. The ratio hits/(walks+hits) is the incremental
// reuse rate of a sweep.
func (c *Compiled) ScheduleCacheStats() (walks, hits uint64) {
	return c.schedWalks.Load(), c.schedHits.Load()
}

// batchState is one lane's struct-of-arrays slot in a batch: the shared
// pooled scratch and the previous lane's summary, which is the lock-free
// incremental fast path — adjacent grid points usually differ in a metrics
// knob or sit on the same capacity plateau, so the previous summary
// frequently matches without touching the shared cache.
type batchState struct {
	s    *scratch
	last *schedSummary
}

// simulateLane evaluates one lane of a batch. A panic anywhere inside the
// lane (including an injected one) is contained to the lane: the shared
// scratch, possibly mid-schedule, is abandoned and replaced with a fresh
// allocation so sibling lanes and the pool never observe poisoned state.
func (c *Compiled) simulateLane(bs *batchState, d Design) (res Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			bs.s = c.newScratch()
			err = fmt.Errorf("aladdin: batch lane panic on %+v: %v", d, v)
		}
	}()
	if ferr := faultinject.Hit(SiteLane); ferr != nil {
		return Result{}, fmt.Errorf("aladdin: %w", ferr)
	}
	if err := d.Validate(); err != nil {
		return Result{}, err
	}
	if d.ClockGHz == 0 {
		d.ClockGHz = 1
	}
	node := cmos.MustLookup(d.NodeNM)
	key := c.walkKey(d, node)
	if bs.last != nil && bs.last.matches(key) {
		c.schedHits.Add(1)
		return c.finishResult(d, node, bs.last), nil
	}
	if sum := c.lookupSched(key); sum != nil {
		bs.last = sum
		return c.finishResult(d, node, sum), nil
	}
	sum, _, err := c.walk(key, bs.s, false)
	if err != nil {
		return Result{}, err
	}
	c.storeSched(sum)
	bs.last = sum
	return c.finishResult(d, node, sum), nil
}

// SimulateBatchInto advances every design in lockstep order over the
// shared compiled topology, writing results[i] and errs[i] for designs[i].
// One pooled scratch serves the whole batch, so in steady state the call
// allocates nothing. Each lane is independent: a failing or panicking lane
// records its error and leaves every sibling untouched. The slices must
// have len(designs); results are bit-identical to sequential Simulate
// calls on the same Compiled.
func (c *Compiled) SimulateBatchInto(designs []Design, results []Result, errs []error) {
	if len(results) != len(designs) || len(errs) != len(designs) {
		panic("aladdin: SimulateBatchInto slice length mismatch")
	}
	if len(designs) == 0 {
		return
	}
	bs := batchState{s: c.pool.Get().(*scratch)}
	for i, d := range designs {
		results[i], errs[i] = c.simulateLane(&bs, d)
	}
	c.pool.Put(bs.s)
}

// SimulateBatch evaluates K designs in lockstep and returns their results
// in order. If any lane failed, the first failure is returned alongside
// the partial results (failed lanes hold zero Results).
func (c *Compiled) SimulateBatch(designs []Design) ([]Result, error) {
	results := make([]Result, len(designs))
	errs := make([]error, len(designs))
	c.SimulateBatchInto(designs, results, errs)
	for i, err := range errs {
		if err != nil {
			return results, fmt.Errorf("aladdin: batch lane %d: %w", i, err)
		}
	}
	return results, nil
}
