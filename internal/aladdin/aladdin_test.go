package aladdin

import (
	"math"
	"testing"
	"testing/quick"

	"accelwall/internal/dfg"
	"accelwall/internal/workloads"
)

func mustBuild(t *testing.T, abbrev string, n int) *dfg.Graph {
	t.Helper()
	spec, err := workloads.ByAbbrev(abbrev)
	if err != nil {
		t.Fatal(err)
	}
	g, err := spec.Build(n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func design(node float64, p, s int, fusion bool) Design {
	return Design{NodeNM: node, Partition: p, Simplification: s, Fusion: fusion}
}

func TestDesignValidate(t *testing.T) {
	good := design(45, 1, 1, false)
	if err := good.Validate(); err != nil {
		t.Errorf("valid design rejected: %v", err)
	}
	bad := []Design{
		design(45, 0, 1, false),
		design(45, MaxPartition+1, 1, false),
		design(45, 1, 0, false),
		design(45, 1, MaxSimplification+1, false),
		design(999, 1, 1, false),
		{NodeNM: 45, Partition: 1, Simplification: 1, ClockGHz: -1},
	}
	for _, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("design %+v should be invalid", d)
		}
	}
}

func TestSimulateBasicShape(t *testing.T) {
	g := mustBuild(t, "RED", 64)
	r, err := Simulate(g, design(45, 4, 1, false))
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles <= 0 || r.RuntimeNS <= 0 || r.Energy <= 0 || r.Power <= 0 || r.Area <= 0 {
		t.Errorf("degenerate result: %+v", r)
	}
	if r.DynEnergy+r.LeakEnergy != r.Energy {
		t.Errorf("energy components do not sum: %g + %g != %g", r.DynEnergy, r.LeakEnergy, r.Energy)
	}
	if r.Utilization <= 0 || r.Utilization > 1 {
		t.Errorf("utilization = %g, want in (0, 1]", r.Utilization)
	}
	if math.Abs(r.Throughput()*r.RuntimeNS-1) > 1e-12 {
		t.Errorf("Throughput inconsistent with runtime")
	}
	if math.Abs(r.EnergyEfficiency()*r.Energy-1) > 1e-12 {
		t.Errorf("EnergyEfficiency inconsistent with energy")
	}
}

func TestSimulateErrors(t *testing.T) {
	if _, err := Simulate(nil, design(45, 1, 1, false)); err == nil {
		t.Error("nil graph should error")
	}
	g := mustBuild(t, "RED", 16)
	if _, err := Simulate(g, design(45, 0, 1, false)); err == nil {
		t.Error("invalid design should error")
	}
	if _, err := CriticalPathCycles(nil, design(45, 1, 1, false)); err == nil {
		t.Error("nil graph critical path should error")
	}
	if _, err := CriticalPathCycles(g, design(45, 0, 1, false)); err == nil {
		t.Error("invalid design critical path should error")
	}
}

// Invariant (DESIGN.md): more lanes never increases the cycle count.
func TestPartitioningMonotone(t *testing.T) {
	for _, app := range []string{"RED", "GMM", "S3D", "NWN", "FFT"} {
		g := mustBuild(t, app, 0)
		prev := math.MaxInt
		for p := 1; p <= 4096; p *= 4 {
			r, err := Simulate(g, design(45, p, 1, false))
			if err != nil {
				t.Fatal(err)
			}
			if r.Cycles > prev {
				t.Errorf("%s: cycles increased from %d to %d at partition %d", app, prev, r.Cycles, p)
			}
			prev = r.Cycles
		}
	}
}

// Partitioning tapers: beyond the DFG's parallelism, cycles plateau at the
// critical path (the Figure 13 plateau).
func TestPartitioningPlateauAtCriticalPath(t *testing.T) {
	g := mustBuild(t, "RED", 128)
	d := design(45, MaxPartition, 1, false)
	r, err := Simulate(g, d)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := CriticalPathCycles(g, d)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles != cp {
		t.Errorf("unlimited-lane cycles = %d, want critical path %d", r.Cycles, cp)
	}
	// A constrained schedule can never beat the critical path.
	r1, err := Simulate(g, design(45, 1, 1, false))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles < cp {
		t.Errorf("1-lane cycles %d beat the critical path %d", r1.Cycles, cp)
	}
}

// Invariant (DESIGN.md): fusion never increases the cycle count, and on a
// chain-heavy workload it strictly reduces it.
func TestFusionNeverHurts(t *testing.T) {
	for _, app := range []string{"AES", "NWN", "SSP", "RED", "S3D"} {
		g := mustBuild(t, app, 0)
		for _, p := range []int{1, 64} {
			off, err := Simulate(g, design(16, p, 1, false))
			if err != nil {
				t.Fatal(err)
			}
			on, err := Simulate(g, design(16, p, 1, true))
			if err != nil {
				t.Fatal(err)
			}
			if on.Cycles > off.Cycles {
				t.Errorf("%s p=%d: fusion increased cycles %d -> %d", app, p, off.Cycles, on.Cycles)
			}
		}
	}
	// AES is a deep chain of cheap ops: fusion must strictly help at high
	// partitioning and actually fuse operations.
	g := mustBuild(t, "AES", 0)
	off, _ := Simulate(g, design(16, 4096, 1, false))
	on, _ := Simulate(g, design(16, 4096, 1, true))
	if on.Cycles >= off.Cycles {
		t.Errorf("AES: fusion did not shorten the schedule (%d vs %d)", on.Cycles, off.Cycles)
	}
	if on.FusedOps == 0 {
		t.Error("AES: no operations fused")
	}
	if off.FusedOps != 0 {
		t.Error("fusion disabled but FusedOps > 0")
	}
}

// Newer CMOS nodes widen the fusion window (Section VI: "more computation
// units are fused and scheduled in a cycle" on newer processes).
func TestFusionWindowWidensOnNewerNodes(t *testing.T) {
	g := mustBuild(t, "AES", 2)
	old, err := Simulate(g, design(45, 4096, 1, true))
	if err != nil {
		t.Fatal(err)
	}
	newer, err := Simulate(g, design(5, 4096, 1, true))
	if err != nil {
		t.Fatal(err)
	}
	if newer.Cycles >= old.Cycles {
		t.Errorf("5nm fused schedule (%d cycles) should beat 45nm (%d)", newer.Cycles, old.Cycles)
	}
}

// Simplification monotonically reduces dynamic energy and area, and its
// latency penalty kicks in at high degrees.
func TestSimplificationEffects(t *testing.T) {
	g := mustBuild(t, "S3D", 0)
	prevDyn, prevArea := math.Inf(1), math.Inf(1)
	for s := 1; s <= MaxSimplification; s++ {
		r, err := Simulate(g, design(45, 16, s, false))
		if err != nil {
			t.Fatal(err)
		}
		if r.DynEnergy >= prevDyn {
			t.Errorf("degree %d: dynamic energy %g did not decrease (prev %g)", s, r.DynEnergy, prevDyn)
		}
		if r.Area >= prevArea {
			t.Errorf("degree %d: area %g did not decrease (prev %g)", s, r.Area, prevArea)
		}
		prevDyn, prevArea = r.DynEnergy, r.Area
	}
	lo, _ := Simulate(g, design(45, 16, 1, false))
	hi, _ := Simulate(g, design(45, 16, 13, false))
	if hi.Cycles <= lo.Cycles {
		t.Errorf("deep pipelining at degree 13 should add latency: %d vs %d cycles", hi.Cycles, lo.Cycles)
	}
}

// CMOS advancement reduces both runtime (faster cycles) and energy
// (lower C·V²) for a fixed microarchitecture — the Figure 13 arrows.
func TestCMOSScalingEffects(t *testing.T) {
	g := mustBuild(t, "S3D", 0)
	nodes := []float64{45, 32, 22, 14, 10, 7, 5}
	prevRT, prevE := math.Inf(1), math.Inf(1)
	for _, nm := range nodes {
		r, err := Simulate(g, design(nm, 16, 1, false))
		if err != nil {
			t.Fatal(err)
		}
		if r.RuntimeNS >= prevRT {
			t.Errorf("%gnm: runtime %g did not improve (prev %g)", nm, r.RuntimeNS, prevRT)
		}
		if r.Energy >= prevE {
			t.Errorf("%gnm: energy %g did not improve (prev %g)", nm, r.Energy, prevE)
		}
		prevRT, prevE = r.RuntimeNS, r.Energy
	}
}

// Partitioning trades power for runtime: more lanes concentrate the same
// switching energy into less time (the up-and-left movement in Figure 13).
func TestPartitioningRaisesPower(t *testing.T) {
	g := mustBuild(t, "S3D", 0)
	serial, err := Simulate(g, design(45, 1, 1, false))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Simulate(g, design(45, 256, 1, false))
	if err != nil {
		t.Fatal(err)
	}
	if parallel.RuntimeNS >= serial.RuntimeNS {
		t.Error("parallel design should be faster")
	}
	if parallel.Power <= serial.Power {
		t.Errorf("parallel power %g should exceed serial %g", parallel.Power, serial.Power)
	}
}

func TestDefaultClock(t *testing.T) {
	g := mustBuild(t, "RED", 16)
	r, err := Simulate(g, Design{NodeNM: 45, Partition: 1, Simplification: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Design.ClockGHz != 1 {
		t.Errorf("default clock = %g, want 1", r.Design.ClockGHz)
	}
	// Doubling the clock halves the runtime.
	r2, err := Simulate(g, Design{NodeNM: 45, Partition: 1, Simplification: 1, ClockGHz: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r2.RuntimeNS*2-r.RuntimeNS) > 1e-9*r.RuntimeNS {
		t.Errorf("clock scaling wrong: %g vs %g", r2.RuntimeNS*2, r.RuntimeNS)
	}
}

// Property: for random valid designs on a fixed workload, the simulator
// never produces non-physical results and respects the critical-path bound.
func TestSimulateSanityProperty(t *testing.T) {
	g := mustBuild(t, "GMM", 4)
	nodes := []float64{45, 28, 16, 10, 7, 5}
	f := func(pRaw uint32, sRaw, nRaw uint8, fusion bool) bool {
		d := Design{
			NodeNM:         nodes[int(nRaw)%len(nodes)],
			Partition:      1 << (pRaw % 16),
			Simplification: int(sRaw%MaxSimplification) + 1,
			Fusion:         fusion,
		}
		r, err := Simulate(g, d)
		if err != nil {
			return false
		}
		if r.Cycles <= 0 || r.Energy <= 0 || r.Power <= 0 || r.Area <= 0 {
			return false
		}
		if r.Utilization < 0 || r.Utilization > 1+1e-9 {
			return false
		}
		if !fusion {
			cp, err := CriticalPathCycles(g, d)
			if err != nil || r.Cycles < cp {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// The Table III sweep relies on runs at partition factors beyond the DFG's
// parallelism being identical; verify the plateau is exact.
func TestPlateauExact(t *testing.T) {
	g := mustBuild(t, "RED", 64)
	a, err := Simulate(g, design(45, 65536, 1, false))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(g, design(45, MaxPartition, 1, false))
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.DynEnergy != b.DynEnergy {
		t.Errorf("plateau not flat: %+v vs %+v", a, b)
	}
}
