package aladdin

import (
	"math/rand"
	"testing"
	"testing/quick"

	"accelwall/internal/dfg"
)

// randomGraph builds a random layered DAG with mixed operation kinds,
// including memory operations, exercising scheduler paths the structured
// kernels do not.
func randomGraph(seed int64) *dfg.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := dfg.New("fuzz")
	ops := []dfg.Op{dfg.OpAdd, dfg.OpSub, dfg.OpMul, dfg.OpDiv, dfg.OpCmp,
		dfg.OpLogic, dfg.OpShift, dfg.OpLoad, dfg.OpStore, dfg.OpSqrt, dfg.OpNonlinear}
	// 2-4 inputs.
	var pool []dfg.NodeID
	for i := 0; i < 2+rng.Intn(3); i++ {
		pool = append(pool, g.AddInput("in"))
	}
	// 3-6 layers of 1-12 ops, each consuming 1-3 earlier values.
	layers := 3 + rng.Intn(4)
	for l := 0; l < layers; l++ {
		width := 1 + rng.Intn(12)
		var layer []dfg.NodeID
		for i := 0; i < width; i++ {
			op := ops[rng.Intn(len(ops))]
			nPreds := 1 + rng.Intn(3)
			if nPreds > len(pool) {
				nPreds = len(pool)
			}
			preds := make([]dfg.NodeID, 0, nPreds)
			seen := make(map[dfg.NodeID]bool)
			for len(preds) < nPreds {
				p := pool[rng.Intn(len(pool))]
				if !seen[p] {
					seen[p] = true
					preds = append(preds, p)
				}
			}
			layer = append(layer, g.MustOp(op, preds...))
		}
		pool = append(pool, layer...)
	}
	// Every dangling value becomes an output so the graph validates.
	for _, nd := range g.Nodes() {
		if nd.Op.IsCompute() && len(g.Succs(nd.ID)) == 0 {
			g.MustOutput("o", nd.ID)
		}
	}
	// Inputs that ended up unused get a sink through a cheap op.
	for _, nd := range g.Nodes() {
		if nd.Op == dfg.OpInput && len(g.Succs(nd.ID)) == 0 {
			g.MustOutput("sink", g.MustOp(dfg.OpLogic, nd.ID))
		}
	}
	return g
}

// Fuzz the scheduler: every random graph under every random (but valid)
// design must produce a schedule that passes the structural validator,
// respect the critical-path bound without fusion, and conserve energy.
func TestSchedulerFuzz(t *testing.T) {
	nodes := []float64{45, 28, 16, 10, 7, 5}
	f := func(seed int64, pRaw uint16, sRaw, nRaw uint8, fusion bool, bRaw uint16) bool {
		g := randomGraph(seed)
		if g.Validate() != nil {
			// Construction guarantees validity; failure here is a bug.
			return false
		}
		d := Design{
			NodeNM:         nodes[int(nRaw)%len(nodes)],
			Partition:      1 + int(pRaw%1024),
			Simplification: 1 + int(sRaw%MaxSimplification),
			Fusion:         fusion,
			MemoryBanks:    int(bRaw % 8), // 0 = banked with datapath
		}
		sched, err := Trace(g, d)
		if err != nil {
			return false
		}
		if err := sched.Validate(g, d); err != nil {
			t.Logf("seed %d design %+v: %v", seed, d, err)
			return false
		}
		r := sched.Result
		if r.Cycles <= 0 || r.Energy <= 0 || r.Power <= 0 || r.Area <= 0 {
			return false
		}
		if r.DynEnergy+r.LeakEnergy != r.Energy {
			return false
		}
		if !fusion {
			cp, err := CriticalPathCycles(g, d)
			if err != nil || r.Cycles < cp {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Fuzz the interaction of graph-level fusion with the scheduler: the fused
// graph must always schedule in at most the original's cycles at high
// parallelism.
func TestFusionTransformFuzz(t *testing.T) {
	f := func(seed int64, wRaw uint8) bool {
		g := randomGraph(seed)
		if g.Validate() != nil {
			return false
		}
		window := 2 + int(wRaw%4)
		fused, _, err := dfg.FuseChains(g, window)
		if err != nil {
			return false
		}
		d := Design{NodeNM: 45, Partition: MaxPartition, Simplification: 1}
		r1, err := Simulate(g, d)
		if err != nil {
			return false
		}
		r2, err := Simulate(fused, d)
		if err != nil {
			return false
		}
		return r2.Cycles <= r1.Cycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
