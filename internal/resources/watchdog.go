// Stuck-work watchdog for the chunked worker pools. The pools (sweep,
// Monte Carlo, and — through the sweep engine — search) heartbeat every
// chunk they claim; a chunk that stays in flight past the configured
// deadline is presumed wedged (a pathological schedule, a hung syscall,
// an injected delay in chaos runs). The watchdog then logs a full
// goroutine stack dump for the post-mortem and requeues the chunk
// exactly once on a rescue goroutine. Rescue and original race to a
// per-chunk claim in the pool; the winner commits, the loser discards,
// so a wedged worker that eventually wakes cannot double-write results.
package resources

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// watchdogCfg is the process-wide watchdog arming, installed like a
// faultinject plan: a single atomic pointer, nil meaning disabled, so
// the per-chunk heartbeats cost one atomic load when off.
type watchdogCfg struct {
	deadline time.Duration
	logf     func(format string, args ...any)
}

var wdActive atomic.Pointer[watchdogCfg]

var (
	wdFires    atomic.Int64
	wdRequeues atomic.Int64
)

// EnableWatchdog arms the process-wide watchdog: any pool chunk in
// flight longer than deadline is stack-dumped through logf (nil
// discards the dump) and requeued once. A non-positive deadline
// disables it.
func EnableWatchdog(deadline time.Duration, logf func(format string, args ...any)) {
	if deadline <= 0 {
		DisableWatchdog()
		return
	}
	wdActive.Store(&watchdogCfg{deadline: deadline, logf: logf})
}

// DisableWatchdog removes the arming. Pools already running keep the
// config they started with.
func DisableWatchdog() { wdActive.Store(nil) }

// WatchdogDeadline reports the armed deadline, 0 when disabled.
func WatchdogDeadline() time.Duration {
	cfg := wdActive.Load()
	if cfg == nil {
		return 0
	}
	return cfg.deadline
}

// WatchdogFires reports how many chunks have been declared wedged.
func WatchdogFires() int64 { return wdFires.Load() }

// WatchdogRequeues reports how many wedged chunks were requeued.
func WatchdogRequeues() int64 { return wdRequeues.Load() }

// ResetWatchdogCounters zeroes the fire/requeue counters (tests).
func ResetWatchdogCounters() {
	wdFires.Store(0)
	wdRequeues.Store(0)
}

// PoolWatch monitors one pool run. A nil *PoolWatch (watchdog disabled)
// makes every method a no-op, so pools call Begin/End/Stop
// unconditionally.
type PoolWatch struct {
	cfg   *watchdogCfg
	rerun func(chunk int)

	mu      sync.Mutex
	started map[int]time.Time
	fired   map[int]bool

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
	rescues  sync.WaitGroup
}

// Watch starts monitoring a pool run, returning nil when the watchdog
// is disabled. rerun re-executes one wedged chunk; it runs on a rescue
// goroutine concurrently with the (possibly still wedged) original
// worker, so it must commit through the pool's per-chunk claim.
func Watch(rerun func(chunk int)) *PoolWatch {
	cfg := wdActive.Load()
	if cfg == nil {
		return nil
	}
	w := &PoolWatch{
		cfg:     cfg,
		rerun:   rerun,
		started: make(map[int]time.Time),
		fired:   make(map[int]bool),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go w.monitor()
	return w
}

// Begin heartbeats that chunk is now in flight on a worker.
func (w *PoolWatch) Begin(chunk int) {
	if w == nil {
		return
	}
	w.mu.Lock()
	w.started[chunk] = time.Now()
	w.mu.Unlock()
}

// End heartbeats that chunk left the worker (committed or discarded).
func (w *PoolWatch) End(chunk int) {
	if w == nil {
		return
	}
	w.mu.Lock()
	delete(w.started, chunk)
	w.mu.Unlock()
}

// Stop shuts the monitor down and waits for any in-flight rescues, so
// after Stop returns no watchdog goroutine can touch the pool's arrays.
// Idempotent.
func (w *PoolWatch) Stop() {
	if w == nil {
		return
	}
	w.stopOnce.Do(func() { close(w.stop) })
	<-w.done
	w.rescues.Wait()
}

// Fired reports whether chunk was ever declared wedged (tests).
func (w *PoolWatch) Fired(chunk int) bool {
	if w == nil {
		return false
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.fired[chunk]
}

// monitor scans the in-flight chunks at a quarter of the deadline, so a
// wedged chunk is declared within deadline..1.25*deadline of Begin.
func (w *PoolWatch) monitor() {
	defer close(w.done)
	period := w.cfg.deadline / 4
	if period < time.Millisecond {
		period = time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			w.scan()
		}
	}
}

// scan declares overdue chunks wedged: stack-dump, count, requeue once.
func (w *PoolWatch) scan() {
	now := time.Now()
	w.mu.Lock()
	var wedged []int
	for chunk, t0 := range w.started {
		if w.fired[chunk] || now.Sub(t0) < w.cfg.deadline {
			continue
		}
		w.fired[chunk] = true
		delete(w.started, chunk)
		wedged = append(wedged, chunk)
	}
	w.mu.Unlock()
	for _, chunk := range wedged {
		wdFires.Add(1)
		w.dump(chunk)
		wdRequeues.Add(1)
		w.rescues.Add(1)
		go func(chunk int) {
			defer w.rescues.Done()
			w.rerun(chunk)
		}(chunk)
	}
}

// dump logs the wedged-chunk diagnosis with a full goroutine stack dump
// — the one artifact that explains where the original worker is stuck.
func (w *PoolWatch) dump(chunk int) {
	if w.cfg.logf == nil {
		return
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	w.cfg.logf("resources: watchdog fired: chunk %d wedged past %s; requeueing once; goroutine dump:\n%s",
		chunk, w.cfg.deadline, buf[:n])
}
