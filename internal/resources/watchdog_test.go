package resources

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// logRecorder captures watchdog output for assertions.
type logRecorder struct {
	mu   sync.Mutex
	logs []string
}

func (l *logRecorder) logf(format string, args ...any) {
	l.mu.Lock()
	l.logs = append(l.logs, fmt.Sprintf(format, args...))
	l.mu.Unlock()
}

func (l *logRecorder) joined() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return strings.Join(l.logs, "\n")
}

func armWatchdog(t *testing.T, deadline time.Duration) *logRecorder {
	t.Helper()
	rec := &logRecorder{}
	EnableWatchdog(deadline, rec.logf)
	ResetWatchdogCounters()
	t.Cleanup(func() {
		DisableWatchdog()
		ResetWatchdogCounters()
	})
	return rec
}

func TestWatchdogDisabledIsNil(t *testing.T) {
	DisableWatchdog()
	w := Watch(func(int) { t.Fatal("rerun called with watchdog disabled") })
	if w != nil {
		t.Fatal("Watch returned a live monitor with the watchdog disabled")
	}
	// All methods must be nil-safe.
	w.Begin(0)
	w.End(0)
	if w.Fired(0) {
		t.Fatal("nil watch reported a fire")
	}
	w.Stop()
}

func TestWatchdogFiresOnWedgedChunk(t *testing.T) {
	rec := armWatchdog(t, 20*time.Millisecond)

	var reran atomic.Int64
	var rerunChunk atomic.Int64
	w := Watch(func(chunk int) {
		reran.Add(1)
		rerunChunk.Store(int64(chunk))
	})
	if w == nil {
		t.Fatal("Watch returned nil with the watchdog armed")
	}
	defer w.Stop()

	w.Begin(3)
	deadline := time.Now().Add(5 * time.Second)
	for !w.Fired(3) {
		if time.Now().After(deadline) {
			t.Fatal("watchdog never fired on a wedged chunk")
		}
		time.Sleep(time.Millisecond)
	}
	w.Stop() // waits out the rescue

	if got := reran.Load(); got != 1 {
		t.Fatalf("rerun called %d times, want exactly 1", got)
	}
	if got := rerunChunk.Load(); got != 3 {
		t.Fatalf("rerun got chunk %d, want 3", got)
	}
	if WatchdogFires() != 1 || WatchdogRequeues() != 1 {
		t.Fatalf("counters fires=%d requeues=%d, want 1/1", WatchdogFires(), WatchdogRequeues())
	}
	logs := rec.joined()
	if !strings.Contains(logs, "watchdog fired") {
		t.Fatalf("log missing fire notice:\n%s", logs)
	}
	if !strings.Contains(logs, "goroutine") {
		t.Fatalf("log missing goroutine stack dump:\n%s", logs)
	}
}

// TestWatchdogRequeuesOnlyOnce pins the exactly-once contract: a chunk
// that stays wedged across many scan periods is still rescued a single
// time.
func TestWatchdogRequeuesOnlyOnce(t *testing.T) {
	armWatchdog(t, 10*time.Millisecond)

	var reran atomic.Int64
	w := Watch(func(int) { reran.Add(1) })
	defer w.Stop()
	w.Begin(7)
	time.Sleep(150 * time.Millisecond) // many scan periods past the deadline
	w.Stop()
	if got := reran.Load(); got != 1 {
		t.Fatalf("wedged chunk rescued %d times, want exactly 1", got)
	}
	if WatchdogRequeues() != 1 {
		t.Fatalf("requeues = %d, want 1", WatchdogRequeues())
	}
}

// TestWatchdogHealthyChunkNeverFires: a chunk that heartbeats End before
// the deadline is never declared wedged.
func TestWatchdogHealthyChunkNeverFires(t *testing.T) {
	armWatchdog(t, 50*time.Millisecond)

	w := Watch(func(int) { t.Error("healthy chunk was rescued") })
	w.Begin(1)
	time.Sleep(5 * time.Millisecond)
	w.End(1)
	time.Sleep(120 * time.Millisecond)
	w.Stop()
	if WatchdogFires() != 0 {
		t.Fatalf("fires = %d, want 0", WatchdogFires())
	}
}

// TestWatchdogStopAwaitsRescues: after Stop returns, the rescue function
// has completed — pools rely on this to let rescues touch shared arrays.
func TestWatchdogStopAwaitsRescues(t *testing.T) {
	armWatchdog(t, 10*time.Millisecond)

	var done atomic.Bool
	w := Watch(func(int) {
		time.Sleep(50 * time.Millisecond)
		done.Store(true)
	})
	w.Begin(0)
	deadline := time.Now().Add(5 * time.Second)
	for !w.Fired(0) {
		if time.Now().After(deadline) {
			t.Fatal("watchdog never fired")
		}
		time.Sleep(time.Millisecond)
	}
	w.Stop()
	if !done.Load() {
		t.Fatal("Stop returned before the rescue finished")
	}
}
