// Package resources is the daemon's resource-governance layer: a global
// memory budget that admission checks projected request footprints
// against, per-request cost estimators for the three heavy request
// kinds, and a stuck-work watchdog for the chunked worker pools.
//
// The discipline mirrors the paper's own accounting: just as the wall
// analysis normalizes specialization gains per unit of scarce silicon,
// the serving layer prices every admitted request in bytes of projected
// peak footprint and refuses work the host cannot hold. Exhaustion then
// degrades predictably — a 429 with Retry-After, or a stale cached
// answer — instead of an OOM kill that takes every in-flight request
// down with it.
package resources

import (
	"math"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// DefaultBudgetBytes is the projected-footprint ceiling used when no
// explicit budget is configured and the Go runtime has no memory limit
// (GOMEMLIMIT) to derive one from.
const DefaultBudgetBytes int64 = 2 << 30

// Per-unit footprint estimates, in bytes. These price the dominant
// allocations on each path and are deliberately round and pessimistic:
// the budget is an admission gate, not an allocator, and over-estimating
// by 2x merely lowers effective concurrency while under-estimating
// reinstates the OOM the layer exists to prevent.
const (
	// sweepPointBytes covers one unique design point end to end: the
	// simulated aladdin.Result, its engine memo entry, the response row,
	// and its share of the marshaled JSON body.
	sweepPointBytes = 768
	// sweepLaneBytes covers one SoA batch lane pinned per worker while a
	// chunk is in flight.
	sweepLaneBytes = 4096
	// replicateBytes covers one Monte Carlo replicate: its substream
	// PRNG state and the per-replicate ratio retained for the quantile
	// reduction.
	replicateBytes = 64
	// corpusEntryBytes covers one published-accelerator corpus entry
	// jittered per replicate batch.
	corpusEntryBytes = 256
	// evaluationBytes covers one search evaluation: the candidate
	// design, its memoized result, and its share of the frontier.
	evaluationBytes = 768
)

// DefaultBudget derives the budget from the runtime's memory limit when
// one is set (half of it, leaving the other half for steady-state heap,
// caches, and the runtime itself), else DefaultBudgetBytes.
func DefaultBudget() int64 {
	lim := debug.SetMemoryLimit(-1)
	if lim <= 0 || lim == math.MaxInt64 {
		return DefaultBudgetBytes
	}
	return lim / 2
}

// SweepCost estimates the peak footprint of a sweep over points unique
// designs evaluated through SoA batches of the given width.
func SweepCost(points, batchWidth int) int64 {
	return int64(points)*sweepPointBytes + int64(batchWidth)*sweepLaneBytes
}

// MonteCarloCost estimates the peak footprint of an uncertainty run of
// replicates Monte Carlo replicates over a corpus of corpusSize
// published accelerators.
func MonteCarloCost(replicates, corpusSize int) int64 {
	return int64(replicates)*replicateBytes + int64(corpusSize)*corpusEntryBytes
}

// SearchCost estimates the peak footprint of a guided search evaluating
// up to population x generations candidate designs.
func SearchCost(population, generations int) int64 {
	return int64(population) * int64(generations) * evaluationBytes
}

// Budget is a global projected-footprint ledger. Admission reserves a
// request's estimated cost before running it and releases it after; a
// reservation that would push the in-flight total past the limit is
// refused. A nil *Budget admits everything.
type Budget struct {
	limit    int64
	inflight atomic.Int64
	sheds    atomic.Int64
}

// NewBudget returns a budget with the given byte limit. A zero limit
// selects DefaultBudget; a negative limit disables the gate (every
// reservation succeeds, but in-flight cost is still tracked).
func NewBudget(limit int64) *Budget {
	if limit == 0 {
		limit = DefaultBudget()
	}
	return &Budget{limit: limit}
}

// TryReserve attempts to reserve cost bytes. On success it returns an
// idempotent release func and true; on refusal it counts the shed and
// returns (nil, false). Non-positive costs are admitted for free.
func (b *Budget) TryReserve(cost int64) (release func(), ok bool) {
	if b == nil || cost <= 0 {
		return func() {}, true
	}
	for {
		cur := b.inflight.Load()
		if b.limit >= 0 && cur+cost > b.limit {
			b.sheds.Add(1)
			return nil, false
		}
		if b.inflight.CompareAndSwap(cur, cur+cost) {
			break
		}
	}
	var once sync.Once
	return func() { once.Do(func() { b.inflight.Add(-cost) }) }, true
}

// Limit reports the byte ceiling (negative: unlimited).
func (b *Budget) Limit() int64 {
	if b == nil {
		return -1
	}
	return b.limit
}

// InFlight reports the currently reserved bytes.
func (b *Budget) InFlight() int64 {
	if b == nil {
		return 0
	}
	return b.inflight.Load()
}

// Sheds reports how many reservations were refused.
func (b *Budget) Sheds() int64 {
	if b == nil {
		return 0
	}
	return b.sheds.Load()
}
