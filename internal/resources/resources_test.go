package resources

import "testing"

func TestMemBudgetReserveRelease(t *testing.T) {
	b := NewBudget(1000)
	if b.Limit() != 1000 {
		t.Fatalf("Limit = %d, want 1000", b.Limit())
	}
	rel, ok := b.TryReserve(600)
	if !ok {
		t.Fatal("reservation under the limit refused")
	}
	if got := b.InFlight(); got != 600 {
		t.Fatalf("InFlight = %d, want 600", got)
	}
	rel()
	if got := b.InFlight(); got != 0 {
		t.Fatalf("InFlight after release = %d, want 0", got)
	}
	// Release is idempotent: a double call must not go negative.
	rel()
	if got := b.InFlight(); got != 0 {
		t.Fatalf("InFlight after double release = %d, want 0", got)
	}
}

func TestMemBudgetShedsAtLimit(t *testing.T) {
	b := NewBudget(1000)
	rel, ok := b.TryReserve(800)
	if !ok {
		t.Fatal("first reservation refused")
	}
	if _, ok := b.TryReserve(300); ok {
		t.Fatal("over-limit reservation admitted")
	}
	if b.Sheds() != 1 {
		t.Fatalf("Sheds = %d, want 1", b.Sheds())
	}
	// Exactly filling the remaining headroom is admitted.
	rel2, ok := b.TryReserve(200)
	if !ok {
		t.Fatal("reservation exactly at the limit refused")
	}
	rel()
	rel2()
}

func TestMemBudgetDisabledStillTracks(t *testing.T) {
	b := NewBudget(-1)
	rel, ok := b.TryReserve(1 << 40)
	if !ok {
		t.Fatal("disabled budget refused a reservation")
	}
	if got := b.InFlight(); got != 1<<40 {
		t.Fatalf("InFlight = %d, want %d", got, int64(1)<<40)
	}
	rel()
	if b.Sheds() != 0 {
		t.Fatalf("Sheds = %d, want 0", b.Sheds())
	}
}

func TestMemBudgetNilSafe(t *testing.T) {
	var b *Budget
	rel, ok := b.TryReserve(123)
	if !ok {
		t.Fatal("nil budget refused a reservation")
	}
	rel()
	if b.InFlight() != 0 || b.Sheds() != 0 || b.Limit() != -1 {
		t.Fatal("nil budget accessors returned nonzero state")
	}
}

func TestMemBudgetZeroCostFree(t *testing.T) {
	b := NewBudget(10)
	rel, ok := b.TryReserve(0)
	if !ok {
		t.Fatal("zero-cost reservation refused")
	}
	rel()
	if b.InFlight() != 0 {
		t.Fatalf("zero-cost reservation changed in-flight to %d", b.InFlight())
	}
}

func TestMemBudgetDefaultPositive(t *testing.T) {
	if DefaultBudget() <= 0 {
		t.Fatalf("DefaultBudget = %d, want > 0", DefaultBudget())
	}
	if NewBudget(0).Limit() <= 0 {
		t.Fatalf("NewBudget(0).Limit() = %d, want > 0", NewBudget(0).Limit())
	}
}

// TestMemBudgetCostEstimators pins the estimators' shape: monotone in
// every argument and strictly positive for real workloads, so admission
// can never price a bigger request below a smaller one.
func TestMemBudgetCostEstimators(t *testing.T) {
	if SweepCost(100, 4) <= 0 || SweepCost(200, 4) <= SweepCost(100, 4) || SweepCost(100, 8) <= SweepCost(100, 4) {
		t.Fatal("SweepCost not positive/monotone")
	}
	if MonteCarloCost(200, 2613) <= 0 || MonteCarloCost(400, 2613) <= MonteCarloCost(200, 2613) {
		t.Fatal("MonteCarloCost not positive/monotone")
	}
	if SearchCost(48, 24) <= 0 || SearchCost(96, 24) <= SearchCost(48, 24) || SearchCost(48, 48) <= SearchCost(48, 24) {
		t.Fatal("SearchCost not positive/monotone")
	}
}
