package core

import (
	"bytes"
	"fmt"

	"accelwall/internal/casestudy"
	"accelwall/internal/gains"
	"accelwall/internal/projection"
	"accelwall/internal/render"
)

// PlotFig1 draws the Figure 1 panel: Bitcoin ASIC relative performance and
// transistor performance over time on a log axis, the paper's iconic
// opening plot.
func (s *Study) PlotFig1() (string, error) {
	rows, err := casestudy.Fig1()
	if err != nil {
		return "", err
	}
	perf := render.Series{Name: "performance", Marker: 'P'}
	phys := render.Series{Name: "transistor performance", Marker: 't'}
	csrS := render.Series{Name: "chip-specialization return", Marker: 'c'}
	for _, r := range rows {
		perf.X = append(perf.X, r.Year)
		perf.Y = append(perf.Y, r.RelPerformance)
		phys.X = append(phys.X, r.Year)
		phys.Y = append(phys.Y, r.TransistorPerformance)
		csrS.X = append(csrS.X, r.Year)
		csrS.Y = append(csrS.Y, r.CSR)
	}
	p := render.Plot{
		Title:  "Fig 1: Bitcoin mining ASICs, relative to the 130nm ASIC (log y)",
		LogY:   true,
		Series: []render.Series{perf, phys, csrS},
	}
	return p.String()
}

// PlotFig13 draws the Figure 13 design-space cloud: runtime vs power on
// log-log axes, one marker per CMOS node, for the 3D stencil kernel.
func (s *Study) PlotFig13() (string, error) {
	rows, best, err := s.fig13Sweep()
	if err != nil {
		return "", err
	}
	byNode := make(map[float64]*render.Series)
	markers := map[float64]rune{45: '4', 32: '3', 22: '2', 14: '1', 10: '0', 7: '7', 5: '5'}
	var series []*render.Series
	for _, r := range rows {
		sr, ok := byNode[r.NodeNM]
		if !ok {
			m := markers[r.NodeNM]
			if m == 0 {
				m = '.'
			}
			sr = &render.Series{Name: fmt.Sprintf("%gnm", r.NodeNM), Marker: m}
			byNode[r.NodeNM] = sr
			series = append(series, sr)
		}
		sr.X = append(sr.X, r.RuntimeNS)
		sr.Y = append(sr.Y, r.PowerW)
	}
	p := render.Plot{
		Title: fmt.Sprintf("Fig 13: 3D stencil runtime vs power (log-log); efficiency optimum at %gnm/p%d/s%d",
			best.Design.NodeNM, best.Design.Partition, best.Design.Simplification),
		LogX: true, LogY: true,
	}
	for _, sr := range series {
		p.Series = append(p.Series, *sr)
	}
	return p.String()
}

// PlotWall draws one domain's accelerator-wall panel (Figures 15/16):
// the observation cloud, its Pareto frontier, the two projection curves,
// and the wall point at the 5 nm physical limit.
func PlotWall(domain casestudy.Domain, target gains.Target) (string, error) {
	proj, err := projection.Project(domain, target)
	if err != nil {
		return "", err
	}
	cloud := render.Series{Name: "chips", Marker: '.'}
	for _, pt := range proj.Points {
		cloud.X = append(cloud.X, pt.X)
		cloud.Y = append(cloud.Y, pt.Y)
	}
	frontier := render.Series{Name: "Pareto frontier", Marker: 'o'}
	for _, pt := range proj.Frontier {
		frontier.X = append(frontier.X, pt.X)
		frontier.Y = append(frontier.Y, pt.Y)
	}
	lo := proj.Frontier[0].X
	hi := proj.PhysLimit
	// The log model can dip below zero near the origin; clamp samples to
	// half the baseline gain so the log-y panel keeps a sensible range.
	clampPos := func(f func(float64) float64) func(float64) float64 {
		return func(x float64) float64 {
			v := f(x)
			if v < 0.5 {
				return 0.5
			}
			return v
		}
	}
	linear := render.Curve("linear projection (Eq 5)", 'L', clampPos(proj.Linear.Eval), lo, hi, 48, true)
	logc := render.Curve("log projection (Eq 6)", 'G', clampPos(proj.Log.Eval), lo, hi, 48, true)
	wall := render.Series{Name: "5nm wall", Marker: 'W', X: []float64{hi, hi}, Y: []float64{proj.ProjLog, proj.ProjLinear}}
	p := render.Plot{
		Title: fmt.Sprintf("%s — %s: wall headroom %.1f-%.1fx (log-log)",
			domain, target, proj.RemainLog, proj.RemainLinear),
		LogX: true, LogY: true,
		Series: []render.Series{cloud, frontier, linear, logc, wall},
	}
	return p.String()
}

// PlotFig15 draws all four performance wall panels.
func (s *Study) PlotFig15() (string, error) { return plotWalls(gains.TargetThroughput) }

// PlotFig16 draws all four efficiency wall panels.
func (s *Study) PlotFig16() (string, error) { return plotWalls(gains.TargetEfficiency) }

func plotWalls(target gains.Target) (string, error) {
	var buf bytes.Buffer
	for _, d := range casestudy.Domains() {
		out, err := PlotWall(d, target)
		if err != nil {
			return "", err
		}
		buf.WriteString(out)
		buf.WriteByte('\n')
	}
	return buf.String(), nil
}

// Plots maps experiment IDs to their figure renderers; the CLI's -plot
// flag appends these to the tabular output.
func Plots() map[string]func(*Study) (string, error) {
	return map[string]func(*Study) (string, error){
		"fig1":  (*Study).PlotFig1,
		"fig13": (*Study).PlotFig13,
		"fig15": (*Study).PlotFig15,
		"fig16": (*Study).PlotFig16,
	}
}
