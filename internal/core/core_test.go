package core

import (
	"strings"
	"testing"

	"accelwall/internal/aladdin"
	"accelwall/internal/casestudy"
	"accelwall/internal/gains"
	"accelwall/internal/sweep"
)

// testStudy builds a study with a very small sweep grid so the Table III
// experiments stay fast under `go test`.
func testStudy(t *testing.T) *Study {
	t.Helper()
	s, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	s.Sweep = sweep.Params{
		Nodes:           []float64{45, 5},
		Partitions:      []int{1, 64, 4096},
		Simplifications: []int{1, 7},
		Fusion:          []bool{false, true},
	}
	return s
}

func TestNewFitsModels(t *testing.T) {
	s, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Corpus == nil || s.Budget == nil || s.Gains == nil {
		t.Fatal("study missing models")
	}
	if s.Corpus.Len() != 2613 {
		t.Errorf("corpus size = %d, want 2613", s.Corpus.Len())
	}
}

func TestNewPublished(t *testing.T) {
	s := NewPublished()
	if s.Corpus != nil {
		t.Error("published study should have no corpus")
	}
	if s.Budget == nil || s.Gains == nil {
		t.Fatal("published study missing models")
	}
	// Corpus-dependent experiments must fail cleanly.
	if _, err := s.Fig3b(); err == nil {
		t.Error("Fig3b without corpus should error")
	}
	if _, err := s.Fig3c(); err == nil {
		t.Error("Fig3c without corpus should error")
	}
}

// Every registered experiment must run green and produce non-trivial
// output containing its table header.
func TestAllExperimentsRun(t *testing.T) {
	s := testStudy(t)
	wantSubstring := map[string]string{
		"fig1":   "transistor-perf",
		"fig2":   "specialization stack",
		"fig11":  "computation paths",
		"fig3a":  "Leakage Power",
		"fig3b":  "TC(D)",
		"fig3c":  "TDP^",
		"fig3d":  "power-capped",
		"fig4a":  "ISSCC2006",
		"fig4b":  "JSSC2017",
		"fig4c":  "ESSCIRC2016",
		"fig5a":  "Crysis 3 FHD",
		"fig5b":  "GTA V FHD",
		"fig6":   "Pascal",
		"fig7":   "Maxwell 2",
		"fig8a":  "AlexNet",
		"fig8b":  "%DSP",
		"fig8c":  "VGG-16",
		"fig9a":  "Athlon64-CPU",
		"fig9b":  "ASIC-16nm-b",
		"table1": "systolic",
		"table2": "max|WS|",
		"table3": "Partitioning Factor",
		"table4": "Needleman-Wunsch",
		"fig13":  "best energy efficiency",
		"fig14":  "%CMOS",
		"table5": "die min/max",
		"fig15":  "headroom",
		"fig16":  "headroom",
	}
	ids := make(map[string]bool)
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			if ids[e.ID] {
				t.Fatalf("duplicate experiment id %q", e.ID)
			}
			ids[e.ID] = true
			if e.Title == "" {
				t.Error("empty title")
			}
			out, err := e.Run(s)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if len(out) < 40 {
				t.Fatalf("suspiciously short output: %q", out)
			}
			if want := wantSubstring[e.ID]; want != "" && !strings.Contains(out, want) {
				t.Errorf("output of %s missing %q:\n%s", e.ID, want, out)
			}
		})
	}
	if len(ids) != 28 {
		t.Errorf("registered %d experiments, want 28 (all tables and figures)", len(ids))
	}
}

func TestExperimentByID(t *testing.T) {
	e, err := ExperimentByID("fig15")
	if err != nil {
		t.Fatal(err)
	}
	if e.ID != "fig15" {
		t.Errorf("resolved wrong experiment %q", e.ID)
	}
	if _, err := ExperimentByID("fig99"); err == nil {
		t.Error("unknown id should error")
	}
}

func TestFig14AttributionsIncludesAverage(t *testing.T) {
	s := testStudy(t)
	attrs, err := s.Fig14Attributions(sweep.Performance)
	if err != nil {
		t.Fatal(err)
	}
	if len(attrs) != 17 {
		t.Fatalf("attributions = %d rows, want 16 apps + AVG", len(attrs))
	}
	avg := attrs[len(attrs)-1]
	if avg.App != "AVG" {
		t.Fatalf("last row = %q, want AVG", avg.App)
	}
	if avg.Total <= 1 {
		t.Errorf("average total gain = %g, want > 1", avg.Total)
	}
	sum := avg.PctCMOS + avg.PctHeterogeneity + avg.PctSimplification + avg.PctPartitioning
	if sum < 95 || sum > 105 {
		t.Errorf("average shares sum to %.1f%%", sum)
	}
}

func TestBenchHelper(t *testing.T) {
	r, err := Bench("RED", aladdin.Design{NodeNM: 45, Partition: 16, Simplification: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles <= 0 {
		t.Errorf("bench result degenerate: %+v", r)
	}
	if _, err := Bench("NOPE", aladdin.Design{NodeNM: 45, Partition: 1, Simplification: 1}); err == nil {
		t.Error("unknown workload should error")
	}
	if _, err := Bench("RED", aladdin.Design{}); err == nil {
		t.Error("invalid design should error")
	}
}

func TestExtensionsRun(t *testing.T) {
	s := testStudy(t)
	want := map[string]string{
		"ext-dark":        "dark fraction",
		"ext-sustain":     "required CSR",
		"ext-asicboost":   "boosted",
		"ext-fit-ci":      "95% CI",
		"ext-algo":        "winograd",
		"ext-domains":     "SHA256d",
		"ext-sensitivity": "90% interval",
	}
	exts := Extensions()
	if len(exts) != 7 {
		t.Fatalf("extensions = %d, want 7", len(exts))
	}
	for _, e := range exts {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			out, err := e.Run(s)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if !strings.Contains(out, want[e.ID]) {
				t.Errorf("output missing %q:\n%s", want[e.ID], out)
			}
		})
	}
	// Extensions resolve through ExperimentByID too.
	if _, err := ExperimentByID("ext-dark"); err != nil {
		t.Errorf("ext-dark not resolvable: %v", err)
	}
	// Corpus-dependent extension fails cleanly on a published study.
	if _, err := NewPublished().ExtFitCI(); err == nil {
		t.Error("ExtFitCI without corpus should error")
	}
}

// The algorithm-innovation extension reproduces known hardware results:
// Winograd convolution and radix-4 FFT beat their bases at a fixed design
// point, while Strassen's extra additions make it a net loss on massively
// parallel hardware.
func TestExtAlgorithmsShape(t *testing.T) {
	s := testStudy(t)
	out, err := s.ExtAlgorithms()
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(out, "\n") {
		switch {
		case strings.HasPrefix(line, "S2D/winograd"):
			if strings.Contains(line, "0.") && !strings.Contains(line, "1.") {
				t.Errorf("Winograd should win: %s", line)
			}
		case strings.HasPrefix(line, "GMM/strassen"):
			if !strings.Contains(line, "0.") {
				t.Errorf("Strassen should lose on parallel hardware: %s", line)
			}
		}
	}
}

func TestPlots(t *testing.T) {
	s := testStudy(t)
	plots := Plots()
	if len(plots) != 4 {
		t.Fatalf("plots = %d, want 4", len(plots))
	}
	for id, draw := range plots {
		out, err := draw(s)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.Contains(out, "|") || !strings.Contains(out, "+----") {
			t.Errorf("%s: output does not look like a plot:\n%.200s", id, out)
		}
	}
	// Fig 1's plot shows its three series.
	fig1, err := s.PlotFig1()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"P performance", "t transistor performance", "c chip-specialization return"} {
		if !strings.Contains(fig1, want) {
			t.Errorf("fig1 plot missing legend %q", want)
		}
	}
	// Wall plots include the projection curves and the wall marker.
	wall, err := PlotWall(casestudy.DomainGPUGraphics, gains.TargetThroughput)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Pareto frontier", "Eq 5", "Eq 6", "5nm wall", "W"} {
		if !strings.Contains(wall, want) {
			t.Errorf("wall plot missing %q", want)
		}
	}
}
