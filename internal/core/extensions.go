package core

import (
	"errors"
	"fmt"
	"text/tabwriter"

	"accelwall/internal/aladdin"
	"accelwall/internal/casestudy"
	"accelwall/internal/gains"
	"accelwall/internal/projection"
	"accelwall/internal/stats"
	"accelwall/internal/sweep"
	"accelwall/internal/workloads"
)

// ExtDarkSilicon renders the dark-silicon extension: the fraction of the
// area transistor budget a TDP envelope forces inactive, across the
// Figure 3d node/die grid. It quantifies the paper's motivating premise
// ("power limitations restrict the fraction of active chip transistors").
func (s *Study) ExtDarkSilicon() (string, error) {
	rows, err := s.Budget.DarkSilicon(gains.Fig3dNodes(), gains.Fig3dDies(), 150)
	if err != nil {
		return "", err
	}
	return table("node\tdie[mm2]\tTDP[W]\tdark fraction", func(w *tabwriter.Writer) {
		for _, r := range rows {
			fmt.Fprintf(w, "%gnm\t%g\t%g\t%.0f%%\n", r.NodeNM, r.DieMM2, r.TDPW, r.Dark*100)
		}
	}), nil
}

// ExtSustain renders the post-wall sustainability extension: each domain's
// historical compound growth, how many years the wall headroom sustains
// it, and the CSR growth that would be required afterwards.
func (s *Study) ExtSustain() (string, error) {
	var out string
	for _, target := range []gains.Target{gains.TargetThroughput, gains.TargetEfficiency} {
		rows, err := projection.SustainabilityAll(target)
		if err != nil {
			return "", err
		}
		out += table(fmt.Sprintf("[%s]\ndomain\tCAGR\tyears-left(log)\tyears-left(linear)\trequired CSR/yr\tobserved CSR/yr", target), func(w *tabwriter.Writer) {
			for _, r := range rows {
				fmt.Fprintf(w, "%s\t%.0f%%\t%.1f\t%.1f\t%.0f%%\t%.1f%%\n",
					r.Domain, r.HistoricalCAGR*100, r.YearsLeftLog, r.YearsLeftLinear,
					r.RequiredCSRGrowth*100, r.ObservedCSRGrowth*100)
			}
		})
	}
	return out, nil
}

// ExtASICBoost renders the ASICBoost counterfactual: the Figure 1 series
// with the one-time 20% algorithmic gain applied from 2016 onward.
func (s *Study) ExtASICBoost() (string, error) {
	rows, err := casestudy.Fig1ASICBoost()
	if err != nil {
		return "", err
	}
	return table("chip\tyear\tperf[x]\ttransistor-perf[x]\tCSR[x]\tboosted", func(w *tabwriter.Writer) {
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%.1f\t%.2f\t%v\n",
				r.Name, r.Year, r.RelPerformance, r.TransistorPerformance, r.CSR, r.Year >= casestudy.ASICBoostYear)
		}
	}), nil
}

// ExtFitCI renders bootstrap confidence intervals for the Figure 3b area
// model fitted on the corpus — the fit-stability view behind the
// corpus-size ablation.
func (s *Study) ExtFitCI() (string, error) {
	if s.Corpus == nil {
		return "", errors.New("core: ExtFitCI requires a datasheet corpus (use New, not NewPublished)")
	}
	xs := make([]float64, 0, s.Corpus.Len())
	ys := make([]float64, 0, s.Corpus.Len())
	for _, ch := range s.Corpus.Chips {
		xs = append(xs, ch.DensityFactor())
		ys = append(ys, ch.Transistors)
	}
	ci, err := stats.BootstrapPowerLaw(xs, ys, 200, 0.95, 1)
	if err != nil {
		return "", err
	}
	fit, err := stats.FitPowerLaw(xs, ys)
	if err != nil {
		return "", err
	}
	rho, err := stats.Spearman(xs, ys)
	if err != nil {
		return "", err
	}
	return table("quantity\tpoint\t95% CI\treference", func(w *tabwriter.Writer) {
		fmt.Fprintf(w, "coefficient A\t%.3g\t%s\t4.99e9 (paper)\n", fit.A, ci.A)
		fmt.Fprintf(w, "exponent B\t%.4f\t%s\t0.877 (paper)\n", fit.B, ci.B)
		fmt.Fprintf(w, "Spearman rho\t%.4f\t\tmonotone density-count relation\n", rho)
	}), nil
}

// ExtAlgorithms renders the algorithm-innovation extension: for each
// implemented algorithm variant (Strassen GMM, Winograd stencil, radix-4
// FFT), base and variant are simulated at identical design points on the
// same CMOS node, so the reported ratios are pure algorithmic CSR -- the
// "Algorithm" layer of the Figure 2 specialization stack, the lever the
// paper identifies as the only one left once CMOS scaling ends.
func (s *Study) ExtAlgorithms() (string, error) {
	design := aladdin.Design{NodeNM: 7, Partition: 256, Simplification: 4, Fusion: true}
	type row struct {
		name          string
		baseRT, varRT float64
		baseE, varE   float64
	}
	var rows []row
	for _, v := range workloads.Variants() {
		baseSpec, err := workloads.ByAbbrev(v.Base)
		if err != nil {
			return "", err
		}
		baseGraph, err := baseSpec.Build(0)
		if err != nil {
			return "", err
		}
		varGraph, err := v.Build(0)
		if err != nil {
			return "", err
		}
		rb, err := aladdin.Simulate(baseGraph, design)
		if err != nil {
			return "", err
		}
		rv, err := aladdin.Simulate(varGraph, design)
		if err != nil {
			return "", err
		}
		rows = append(rows, row{v.Base + "/" + v.Name, rb.RuntimeNS, rv.RuntimeNS, rb.Energy, rv.Energy})
	}
	return table("variant\truntime base/var [ns]\tenergy base/var\tspeedup CSR\tenergy CSR", func(w *tabwriter.Writer) {
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%.1f / %.1f\t%.0f / %.0f\t%.2fx\t%.2fx\n",
				r.name, r.baseRT, r.varRT, r.baseE, r.varE, r.baseRT/r.varRT, r.baseE/r.varE)
		}
	}), nil
}

// ExtDomainKernels renders the domain-kernel extension: the Section VI
// attribution machinery applied to concrete kernels of the Section IV
// domains themselves (SHA-256 double hashing, 8x8 IDCT, a shading
// kernel). The confined SHA-256 kernel shows the largest partitioning
// share and the smallest CMOS-independent return, quantifying why mining
// hits the wall first.
func (s *Study) ExtDomainKernels() (string, error) {
	type row struct {
		name string
		perf sweep.Attribution
		eff  sweep.Attribution
	}
	var rows []row
	for _, k := range workloads.DomainKernels() {
		g, err := k.Build(0)
		if err != nil {
			return "", err
		}
		perf, err := sweep.AttributeParallelContext(s.ctx(), k.Name, g, s.Sweep, sweep.Performance, s.Workers)
		if err != nil {
			return "", err
		}
		eff, err := sweep.AttributeParallelContext(s.ctx(), k.Name, g, s.Sweep, sweep.Efficiency, s.Workers)
		if err != nil {
			return "", err
		}
		rows = append(rows, row{k.Domain + "/" + k.Name, perf, eff})
	}
	return table("kernel\tperf gain\tperf CSR\tperf %part\teff gain\teff CSR\teff %CMOS", func(w *tabwriter.Writer) {
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%.0fx\t%.2fx\t%.0f%%\t%.0fx\t%.2fx\t%.0f%%\n",
				r.name, r.perf.Total, r.perf.CSR, r.perf.PctPartitioning,
				r.eff.Total, r.eff.CSR, r.eff.PctCMOS)
		}
	}), nil
}

// ExtSensitivity renders the Monte-Carlo robustness extension: headroom
// quantiles under jittered observations and a perturbed 5 nm limit. The
// wall conclusion survives the noise in every domain.
func (s *Study) ExtSensitivity() (string, error) {
	var out string
	for _, target := range []gains.Target{gains.TargetThroughput, gains.TargetEfficiency} {
		rows, err := projection.SensitizeAll(target, projection.SensitivityConfig{Trials: 200, Seed: 1})
		if err != nil {
			return "", err
		}
		out += table(fmt.Sprintf("[%s]\ndomain\tpoint (log-linear)\tmedian\t90%% interval", target), func(w *tabwriter.Writer) {
			for _, r := range rows {
				fmt.Fprintf(w, "%s\t%.1f-%.1fx\t%.1f-%.1fx\t[%.1f, %.1f]x\n",
					r.Domain, r.PointLog, r.PointLinear, r.LogMedian, r.LinearMedian, r.LinearQ05, r.LinearQ95)
			}
		})
	}
	return out, nil
}

// Extensions returns the beyond-the-paper analyses: quantifications the
// paper motivates but does not plot.
func Extensions() []Experiment {
	return []Experiment{
		{ID: "ext-dark", Title: "Dark Silicon Fractions (extension)", Run: (*Study).ExtDarkSilicon},
		{ID: "ext-sustain", Title: "Post-Wall Sustainability (extension)", Run: (*Study).ExtSustain},
		{ID: "ext-asicboost", Title: "ASICBoost Counterfactual (extension)", Run: (*Study).ExtASICBoost},
		{ID: "ext-fit-ci", Title: "Fit Confidence Intervals (extension)", Run: (*Study).ExtFitCI},
		{ID: "ext-algo", Title: "Algorithmic Innovation CSR (extension)", Run: (*Study).ExtAlgorithms},
		{ID: "ext-domains", Title: "Domain Kernel Attribution (extension)", Run: (*Study).ExtDomainKernels},
		{ID: "ext-sensitivity", Title: "Wall Robustness Monte Carlo (extension)", Run: (*Study).ExtSensitivity},
	}
}
