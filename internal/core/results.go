// Machine-readable result structs. Every experiment the CLI renders as a
// text table has (or is growing) a typed, JSON-tagged counterpart here, so
// the `accelwall -json` flag and the accelwalld HTTP API emit byte-
// compatible payloads from one codec layer instead of each re-rendering
// the sub-package row types.
package core

import (
	"fmt"

	"accelwall/internal/aladdin"
	"accelwall/internal/casestudy"
	"accelwall/internal/cmos"
	"accelwall/internal/csr"
	"accelwall/internal/gains"
	"accelwall/internal/projection"
	"accelwall/internal/sweep"
)

// TargetName canonicalizes a gains target for wire payloads.
func TargetName(t gains.Target) string {
	if t == gains.TargetEfficiency {
		return "efficiency"
	}
	return "performance"
}

// ParseTarget inverts TargetName, accepting a few common spellings.
func ParseTarget(s string) (gains.Target, error) {
	switch s {
	case "", "performance", "throughput", "perf":
		return gains.TargetThroughput, nil
	case "efficiency", "energy", "energy-efficiency":
		return gains.TargetEfficiency, nil
	}
	return 0, fmt.Errorf("core: unknown target %q (want performance or efficiency)", s)
}

// ObjectiveName canonicalizes a sweep objective for wire payloads.
func ObjectiveName(o sweep.Objective) string {
	if o == sweep.Efficiency {
		return "efficiency"
	}
	return "performance"
}

// ParseObjective inverts ObjectiveName.
func ParseObjective(s string) (sweep.Objective, error) {
	switch s {
	case "", "efficiency", "energy", "energy-efficiency":
		return sweep.Efficiency, nil
	case "performance", "throughput", "perf":
		return sweep.Performance, nil
	}
	return 0, fmt.Errorf("core: unknown objective %q (want performance or efficiency)", s)
}

// DesignJSON is the wire form of an accelerator design point.
type DesignJSON struct {
	NodeNM         float64 `json:"node_nm"`
	Partition      int     `json:"partition"`
	Simplification int     `json:"simplification"`
	Fusion         bool    `json:"fusion"`
	ClockGHz       float64 `json:"clock_ghz,omitempty"`
	MemoryBanks    int     `json:"memory_banks,omitempty"`
}

// NewDesignJSON converts a simulator design to its wire form.
func NewDesignJSON(d aladdin.Design) DesignJSON {
	return DesignJSON{
		NodeNM:         d.NodeNM,
		Partition:      d.Partition,
		Simplification: d.Simplification,
		Fusion:         d.Fusion,
		ClockGHz:       d.ClockGHz,
		MemoryBanks:    d.MemoryBanks,
	}
}

// Design converts the wire form back to a simulator design.
func (j DesignJSON) Design() aladdin.Design {
	return aladdin.Design{
		NodeNM:         j.NodeNM,
		Partition:      j.Partition,
		Simplification: j.Simplification,
		Fusion:         j.Fusion,
		ClockGHz:       j.ClockGHz,
		MemoryBanks:    j.MemoryBanks,
	}
}

// ResultJSON is the wire form of one simulation result, with the two
// derived target-function values precomputed.
type ResultJSON struct {
	Cycles           int     `json:"cycles"`
	RuntimeNS        float64 `json:"runtime_ns"`
	DynEnergy        float64 `json:"dyn_energy"`
	LeakEnergy       float64 `json:"leak_energy"`
	Energy           float64 `json:"energy"`
	PowerW           float64 `json:"power_w"`
	Area             float64 `json:"area"`
	Utilization      float64 `json:"utilization"`
	FusedOps         int     `json:"fused_ops"`
	Throughput       float64 `json:"throughput"`
	EnergyEfficiency float64 `json:"energy_efficiency"`
}

// NewResultJSON converts a simulation result to its wire form.
func NewResultJSON(r aladdin.Result) ResultJSON {
	return ResultJSON{
		Cycles:           r.Cycles,
		RuntimeNS:        r.RuntimeNS,
		DynEnergy:        r.DynEnergy,
		LeakEnergy:       r.LeakEnergy,
		Energy:           r.Energy,
		PowerW:           r.Power,
		Area:             r.Area,
		Utilization:      r.Utilization,
		FusedOps:         r.FusedOps,
		Throughput:       r.Throughput(),
		EnergyEfficiency: r.EnergyEfficiency(),
	}
}

// SweepPointJSON couples a design with its simulated result.
type SweepPointJSON struct {
	Design DesignJSON `json:"design"`
	Result ResultJSON `json:"result"`
}

// NewSweepPointJSON converts one sweep point.
func NewSweepPointJSON(p sweep.Point) SweepPointJSON {
	return SweepPointJSON{Design: NewDesignJSON(p.Design), Result: NewResultJSON(p.Result)}
}

// FrontierPointJSON is one Pareto-efficient design on the runtime/power
// trade-off.
type FrontierPointJSON struct {
	Design    DesignJSON `json:"design"`
	RuntimeNS float64    `json:"runtime_ns"`
	PowerW    float64    `json:"power_w"`
}

// NewFrontierJSON converts a design frontier.
func NewFrontierJSON(fps []sweep.FrontierPoint) []FrontierPointJSON {
	out := make([]FrontierPointJSON, 0, len(fps))
	for _, fp := range fps {
		out = append(out, FrontierPointJSON{Design: NewDesignJSON(fp.Design), RuntimeNS: fp.RuntimeNS, PowerW: fp.PowerW})
	}
	return out
}

// CSRRowJSON is one Equation 1 decomposition row: reported gain, physical
// (CMOS-driven) gain, and their quotient, the chip specialization return.
type CSRRowJSON struct {
	Name         string  `json:"name"`
	Kind         string  `json:"kind,omitempty"`
	Year         float64 `json:"year,omitempty"`
	NodeNM       float64 `json:"node_nm,omitempty"`
	Gain         float64 `json:"gain"`
	PhysicalGain float64 `json:"physical_gain,omitempty"`
	CSR          float64 `json:"csr"`
}

// NewCSRRows converts csr.Analyze output to wire rows.
func NewCSRRows(rows []csr.Row) []CSRRowJSON {
	out := make([]CSRRowJSON, 0, len(rows))
	for _, r := range rows {
		out = append(out, CSRRowJSON{
			Name:         r.Name,
			Year:         r.Year,
			Gain:         r.Gain,
			PhysicalGain: r.PhysicalGain,
			CSR:          r.CSR,
		})
	}
	return out
}

// CMOSNodeJSON is the wire form of one CMOS node's scaling factors, all
// normalized so the 45 nm entry equals 1, plus the absolute density model.
type CMOSNodeJSON struct {
	NodeNM        float64 `json:"node_nm"`
	Freq          float64 `json:"freq"`
	VDD           float64 `json:"vdd"`
	Cap           float64 `json:"cap"`
	Leak          float64 `json:"leak"`
	DynEnergy     float64 `json:"dyn_energy"`
	DensityMTrMM2 float64 `json:"density_mtr_mm2"`
}

// NewCMOSNodeJSON converts one node-table entry.
func NewCMOSNodeJSON(n cmos.Node) CMOSNodeJSON {
	return CMOSNodeJSON{
		NodeNM:        n.NM,
		Freq:          n.Freq,
		VDD:           n.VDD,
		Cap:           n.Cap,
		Leak:          n.Leak,
		DynEnergy:     n.DynEnergy(),
		DensityMTrMM2: n.Density(),
	}
}

// Fig3aRowJSON is one device-scaling curve sample of Figure 3a.
type Fig3aRowJSON struct {
	Metric string  `json:"metric"`
	NodeNM float64 `json:"node_nm"`
	Value  float64 `json:"value"`
}

// ProjectionJSON is the accelerator-wall summary for one (domain, target)
// pair: the physical limit of the Table V chip at 5 nm, the best existing
// chip, and the bracketing wall projections in both relative and absolute
// units.
type ProjectionJSON struct {
	Domain        string  `json:"domain"`
	Target        string  `json:"target"`
	PhysLimit     float64 `json:"phys_limit"`
	CurrentBest   float64 `json:"current_best"`
	ProjLog       float64 `json:"proj_log"`
	ProjLinear    float64 `json:"proj_linear"`
	RemainLog     float64 `json:"remain_log"`
	RemainLinear  float64 `json:"remain_linear"`
	WallLogAbs    float64 `json:"wall_log_abs"`
	WallLinearAbs float64 `json:"wall_linear_abs"`
	Unit          string  `json:"unit"`
}

// NewProjectionJSON converts one wall projection.
func NewProjectionJSON(p projection.Projection) ProjectionJSON {
	return ProjectionJSON{
		Domain:        p.Domain.String(),
		Target:        TargetName(p.Target),
		PhysLimit:     p.PhysLimit,
		CurrentBest:   p.CurrentBest,
		ProjLog:       p.ProjLog,
		ProjLinear:    p.ProjLinear,
		RemainLog:     p.RemainLog,
		RemainLinear:  p.RemainLinear,
		WallLogAbs:    p.ProjLog * p.BaselineAbs,
		WallLinearAbs: p.ProjLinear * p.BaselineAbs,
		Unit:          p.Unit,
	}
}

// AttributionJSON is the Figure 14 gain decomposition for one workload.
type AttributionJSON struct {
	App               string  `json:"app"`
	Objective         string  `json:"objective"`
	Partitioning      float64 `json:"partitioning"`
	Heterogeneity     float64 `json:"heterogeneity"`
	Simplification    float64 `json:"simplification"`
	CMOS              float64 `json:"cmos"`
	Total             float64 `json:"total"`
	PctPartitioning   float64 `json:"pct_partitioning"`
	PctHeterogeneity  float64 `json:"pct_heterogeneity"`
	PctSimplification float64 `json:"pct_simplification"`
	PctCMOS           float64 `json:"pct_cmos"`
	CSR               float64 `json:"csr"`
}

// NewAttributionJSON converts one attribution row.
func NewAttributionJSON(a sweep.Attribution) AttributionJSON {
	return AttributionJSON{
		App:               a.App,
		Objective:         ObjectiveName(a.Objective),
		Partitioning:      a.Partitioning,
		Heterogeneity:     a.Heterogeneity,
		Simplification:    a.Simplification,
		CMOS:              a.CMOS,
		Total:             a.Total,
		PctPartitioning:   a.PctPartitioning,
		PctHeterogeneity:  a.PctHeterogeneity,
		PctSimplification: a.PctSimplification,
		PctCMOS:           a.PctCMOS,
		CSR:               a.CSR,
	}
}

// SweepCloudRowJSON is one design point of the Figure 13 runtime/power
// cloud.
type SweepCloudRowJSON struct {
	NodeNM         float64 `json:"node_nm"`
	Partition      int     `json:"partition"`
	Simplification int     `json:"simplification"`
	Fusion         bool    `json:"fusion"`
	RuntimeNS      float64 `json:"runtime_ns"`
	PowerW         float64 `json:"power_w"`
	EnergyEff      float64 `json:"energy_eff"`
}

// Fig13JSON is the typed Figure 13 payload: the full cloud plus the
// energy-efficiency optimum.
type Fig13JSON struct {
	Points []SweepCloudRowJSON `json:"points"`
	Best   SweepPointJSON      `json:"best"`
}

// HardwareRowJSON is one hardware-budget row (Figure 4b).
type HardwareRowJSON struct {
	Name           string  `json:"name"`
	NodeNM         float64 `json:"node_nm"`
	RelTransistors float64 `json:"rel_transistors"`
	FreqMHz        float64 `json:"freq_mhz"`
}

// UtilizationRowJSON is one FPGA resource-utilization row (Figure 8b).
type UtilizationRowJSON struct {
	Name    string  `json:"name"`
	Model   string  `json:"model"`
	LUTPct  float64 `json:"lut_pct"`
	DSPPct  float64 `json:"dsp_pct"`
	BRAMPct float64 `json:"bram_pct"`
	FreqMHz float64 `json:"freq_mhz"`
}

// GPUSeriesJSON summarizes one application's GPU gain series (Figure 5).
type GPUSeriesJSON struct {
	App       string  `json:"app"`
	Target    string  `json:"target"`
	TotalGain float64 `json:"total_gain"`
	FinalCSR  float64 `json:"final_csr"`
	Trend     string  `json:"trend"`
}

// WallConfigJSON is one Table V physical-parameter row.
type WallConfigJSON struct {
	Domain    string  `json:"domain"`
	Platform  string  `json:"platform"`
	DieMinMM2 float64 `json:"die_min_mm2"`
	DieMaxMM2 float64 `json:"die_max_mm2"`
	TDPW      float64 `json:"tdp_w"`
	FreqMHz   float64 `json:"freq_mhz"`
}

// FigureJSON couples a figure identifier with its typed rows.
type FigureJSON struct {
	ID    string `json:"id"`
	Title string `json:"title"`
	Rows  any    `json:"rows"`
}

// CaseStudyJSON is one Section IV case-study summary: every figure of the
// domain, with typed rows.
type CaseStudyJSON struct {
	Domain  string       `json:"domain"`
	Title   string       `json:"title"`
	Figures []FigureJSON `json:"figures"`
}

// CaseStudyNames lists the served case-study identifiers.
func CaseStudyNames() []string { return []string{"bitcoin", "videodec", "gpu", "fpgacnn"} }

// CaseStudy builds the typed summary of one case-study domain. Valid names
// are those of CaseStudyNames.
func CaseStudy(name string) (CaseStudyJSON, error) {
	switch name {
	case "bitcoin":
		return bitcoinCaseStudy()
	case "videodec":
		return videodecCaseStudy()
	case "gpu":
		return gpuCaseStudy()
	case "fpgacnn":
		return fpgacnnCaseStudy()
	}
	return CaseStudyJSON{}, fmt.Errorf("core: unknown case study %q (want one of %v)", name, CaseStudyNames())
}

func bitcoinCaseStudy() (CaseStudyJSON, error) {
	cs := CaseStudyJSON{Domain: "bitcoin", Title: casestudy.DomainBitcoin.String()}
	fig1, err := casestudy.Fig1()
	if err != nil {
		return CaseStudyJSON{}, err
	}
	rows := make([]CSRRowJSON, 0, len(fig1))
	for _, r := range fig1 {
		rows = append(rows, CSRRowJSON{
			Name: r.Name, Year: r.Year, NodeNM: r.NodeNM,
			Gain: r.RelPerformance, PhysicalGain: r.TransistorPerformance, CSR: r.CSR,
		})
	}
	cs.Figures = append(cs.Figures, FigureJSON{ID: "fig1", Title: "Bitcoin ASIC evolution", Rows: rows})
	for _, target := range []gains.Target{gains.TargetThroughput, gains.TargetEfficiency} {
		fig9, err := casestudy.Fig9(target)
		if err != nil {
			return CaseStudyJSON{}, err
		}
		rows := make([]CSRRowJSON, 0, len(fig9))
		for _, r := range fig9 {
			rows = append(rows, CSRRowJSON{
				Name: r.Name, Kind: r.Kind.String(), Year: r.Year, NodeNM: r.NodeNM,
				Gain: r.RelGain, CSR: r.CSR,
			})
		}
		id := "fig9a"
		if target == gains.TargetEfficiency {
			id = "fig9b"
		}
		cs.Figures = append(cs.Figures, FigureJSON{
			ID: id, Title: "Cross-platform mining, " + TargetName(target), Rows: rows,
		})
	}
	return cs, nil
}

func videodecCaseStudy() (CaseStudyJSON, error) {
	cs := CaseStudyJSON{Domain: "videodec", Title: casestudy.DomainVideoDecode.String()}
	for _, target := range []gains.Target{gains.TargetThroughput, gains.TargetEfficiency} {
		fig4, err := casestudy.Fig4(target)
		if err != nil {
			return CaseStudyJSON{}, err
		}
		rows := make([]CSRRowJSON, 0, len(fig4))
		for _, r := range fig4 {
			rows = append(rows, CSRRowJSON{Name: r.Pub, Year: r.Year, NodeNM: r.NodeNM, Gain: r.RelGain, CSR: r.CSR})
		}
		id := "fig4a"
		if target == gains.TargetEfficiency {
			id = "fig4c"
		}
		cs.Figures = append(cs.Figures, FigureJSON{
			ID: id, Title: "Decoder ASIC gains, " + TargetName(target), Rows: rows,
		})
	}
	fig4b, err := casestudy.Fig4b()
	if err != nil {
		return CaseStudyJSON{}, err
	}
	hw := make([]HardwareRowJSON, 0, len(fig4b))
	for _, r := range fig4b {
		hw = append(hw, HardwareRowJSON{Name: r.Pub, NodeNM: r.NodeNM, RelTransistors: r.RelTransistors, FreqMHz: r.FreqMHz})
	}
	cs.Figures = append(cs.Figures, FigureJSON{ID: "fig4b", Title: "Decoder hardware budget", Rows: hw})
	return cs, nil
}

func gpuCaseStudy() (CaseStudyJSON, error) {
	cs := CaseStudyJSON{Domain: "gpu", Title: casestudy.DomainGPUGraphics.String()}
	for _, target := range []gains.Target{gains.TargetThroughput, gains.TargetEfficiency} {
		series, err := casestudy.Fig5(target)
		if err != nil {
			return CaseStudyJSON{}, err
		}
		rows := make([]GPUSeriesJSON, 0, len(series))
		for _, sr := range series {
			rows = append(rows, GPUSeriesJSON{
				App: sr.App.Name, Target: TargetName(target),
				TotalGain: sr.TotalGain, FinalCSR: sr.FinalCSR, Trend: sr.TrendRel.String(),
			})
		}
		id := "fig5a"
		if target == gains.TargetEfficiency {
			id = "fig5b"
		}
		cs.Figures = append(cs.Figures, FigureJSON{
			ID: id, Title: "GPU frame-rate series, " + TargetName(target), Rows: rows,
		})
	}
	for _, target := range []gains.Target{gains.TargetThroughput, gains.TargetEfficiency} {
		points, err := casestudy.ArchScaling(target)
		if err != nil {
			return CaseStudyJSON{}, err
		}
		rows := make([]CSRRowJSON, 0, len(points))
		for _, p := range points {
			rows = append(rows, CSRRowJSON{Name: p.Arch, Year: p.Year, NodeNM: p.NodeNM, Gain: p.RelGain, CSR: p.CSR})
		}
		id, title := "fig6", "Architecture + CMOS scaling, performance"
		if target == gains.TargetEfficiency {
			id, title = "fig7", "Architecture + CMOS scaling, efficiency"
		}
		cs.Figures = append(cs.Figures, FigureJSON{ID: id, Title: title, Rows: rows})
	}
	return cs, nil
}

func fpgacnnCaseStudy() (CaseStudyJSON, error) {
	cs := CaseStudyJSON{Domain: "fpgacnn", Title: casestudy.DomainFPGACNN.String()}
	for _, target := range []gains.Target{gains.TargetThroughput, gains.TargetEfficiency} {
		var rows []CSRRowJSON
		for _, model := range []casestudy.CNNModel{casestudy.AlexNet, casestudy.VGG16} {
			fig8, err := casestudy.Fig8(model, target)
			if err != nil {
				return CaseStudyJSON{}, err
			}
			for _, r := range fig8 {
				rows = append(rows, CSRRowJSON{
					Name: r.Pub, Kind: r.Model.String(), Year: r.Year, NodeNM: r.NodeNM,
					Gain: r.RelGain, CSR: r.CSR,
				})
			}
		}
		id := "fig8a"
		if target == gains.TargetEfficiency {
			id = "fig8c"
		}
		cs.Figures = append(cs.Figures, FigureJSON{
			ID: id, Title: "FPGA CNN gains, " + TargetName(target), Rows: rows,
		})
	}
	var util []UtilizationRowJSON
	for _, model := range []casestudy.CNNModel{casestudy.AlexNet, casestudy.VGG16} {
		for _, r := range casestudy.Fig8b(model) {
			util = append(util, UtilizationRowJSON{
				Name: r.Pub, Model: r.Model.String(),
				LUTPct: r.UtilLUT, DSPPct: r.UtilDSP, BRAMPct: r.UtilBRAM, FreqMHz: r.FreqMHz,
			})
		}
	}
	cs.Figures = append(cs.Figures, FigureJSON{ID: "fig8b", Title: "FPGA resource utilization", Rows: util})
	return cs, nil
}

// ExperimentJSON is one experiment's machine-readable payload. Rows holds
// typed rows where the experiment has a structured codec; experiments that
// are inherently textual (static figures, concept tables) fall back to the
// rendered Text.
type ExperimentJSON struct {
	ID    string `json:"id"`
	Title string `json:"title"`
	Rows  any    `json:"rows,omitempty"`
	Text  string `json:"text,omitempty"`
}

// ExperimentJSON builds the machine-readable payload of one experiment,
// resolving both paper experiments and extensions. It shares the row
// codecs with the accelwalld HTTP API.
func (s *Study) ExperimentJSON(id string) (ExperimentJSON, error) {
	e, err := ExperimentByID(id)
	if err != nil {
		return ExperimentJSON{}, err
	}
	out := ExperimentJSON{ID: e.ID, Title: e.Title}
	switch id {
	case "fig1":
		cs, err := bitcoinCaseStudy()
		if err != nil {
			return ExperimentJSON{}, err
		}
		out.Rows = cs.Figures[0].Rows
	case "fig3a":
		rows, err := cmos.Fig3a()
		if err != nil {
			return ExperimentJSON{}, err
		}
		jrows := make([]Fig3aRowJSON, 0, len(rows))
		for _, r := range rows {
			jrows = append(jrows, Fig3aRowJSON{Metric: r.Metric.String(), NodeNM: r.NodeNM, Value: r.Value})
		}
		out.Rows = jrows
	case "fig4a", "fig4b", "fig4c":
		out.Rows, err = caseStudyFigure("videodec", id)
	case "fig5a", "fig5b", "fig6", "fig7":
		out.Rows, err = caseStudyFigure("gpu", id)
	case "fig8a", "fig8b", "fig8c":
		out.Rows, err = caseStudyFigure("fpgacnn", id)
	case "fig9a", "fig9b":
		out.Rows, err = caseStudyFigure("bitcoin", id)
	case "fig13":
		out.Rows, err = s.Fig13JSON()
	case "fig14":
		var attrs []AttributionJSON
		for _, objective := range []sweep.Objective{sweep.Performance, sweep.Efficiency} {
			rows, err := s.Fig14Attributions(objective)
			if err != nil {
				return ExperimentJSON{}, err
			}
			for _, a := range rows {
				attrs = append(attrs, NewAttributionJSON(a))
			}
		}
		out.Rows = attrs
	case "fig15", "fig16":
		run := projection.Fig15
		if id == "fig16" {
			run = projection.Fig16
		}
		projs, err := run()
		if err != nil {
			return ExperimentJSON{}, err
		}
		rows := make([]ProjectionJSON, 0, len(projs))
		for _, p := range projs {
			rows = append(rows, NewProjectionJSON(p))
		}
		out.Rows = rows
	case "table5":
		rows := projection.TableV()
		jrows := make([]WallConfigJSON, 0, len(rows))
		for _, r := range rows {
			jrows = append(jrows, WallConfigJSON{
				Domain: r.Domain.String(), Platform: r.Platform,
				DieMinMM2: r.DieMinMM2, DieMaxMM2: r.DieMaxMM2, TDPW: r.TDPW, FreqMHz: r.FreqMHz,
			})
		}
		out.Rows = jrows
	default:
		out.Text, err = e.Run(s)
	}
	if err != nil {
		return ExperimentJSON{}, err
	}
	return out, nil
}

// caseStudyFigure extracts one figure's typed rows from a case-study
// summary.
func caseStudyFigure(domain, figID string) (any, error) {
	cs, err := CaseStudy(domain)
	if err != nil {
		return nil, err
	}
	for _, f := range cs.Figures {
		if f.ID == figID {
			return f.Rows, nil
		}
	}
	return nil, fmt.Errorf("core: case study %q has no figure %q", domain, figID)
}

// Fig13JSON computes the typed Figure 13 payload over the study's grid.
func (s *Study) Fig13JSON() (Fig13JSON, error) {
	rows, best, err := s.fig13Sweep()
	if err != nil {
		return Fig13JSON{}, err
	}
	out := Fig13JSON{Best: NewSweepPointJSON(best)}
	out.Points = make([]SweepCloudRowJSON, 0, len(rows))
	for _, r := range rows {
		out.Points = append(out.Points, SweepCloudRowJSON{
			NodeNM: r.NodeNM, Partition: r.Partition, Simplification: r.Simplification,
			Fusion: r.Fusion, RuntimeNS: r.RuntimeNS, PowerW: r.PowerW, EnergyEff: r.EnergyEff,
		})
	}
	return out, nil
}
