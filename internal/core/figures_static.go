package core

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"accelwall/internal/dfg"
)

// Fig2 renders the abstraction-layer comparison of Figure 2: the
// traditional computing stack beside the accelerator-centric taxonomy,
// with the dashed specialization-stack grouping the paper's CSR metric
// isolates (everything between the fixed computation domain and the
// physical layer).
func (s *Study) Fig2() (string, error) {
	type layer struct {
		traditional string
		accelerated string
		examples    string
		inStack     bool
	}
	layers := []layer{
		{"Application", "Computation Domain (fixed)", "deep learning, graph processing", false},
		{"Algorithm", "Algorithm", "AlexNet, VGG, LSTM; BFS, PageRank", true},
		{"Prog. Language / OS / ISA", "Programming Framework", "CUDA, HLS", true},
		{"Microarchitecture", "Accelerator Platform", "ASIC, FPGA", true},
		{"RTL / Circuits", "Chip Engineering", "design methodologies, CAD tools", true},
		{"Gate Level / Devices / Technology", "Physical Properties", "45nm CMOS, 100mm² die", false},
	}
	return table("traditional\taccelerator-centric\texamples\tspecialization stack", func(w *tabwriter.Writer) {
		for _, l := range layers {
			mark := ""
			if l.inStack {
				mark = "yes (CSR isolates this)"
			}
			fmt.Fprintf(w, "%s\t%s\t%s\t%s\n", l.traditional, l.accelerated, l.examples, mark)
		}
	}), nil
}

// Fig11 renders the example dataflow graph of Figure 11 — three inputs,
// two computation stages, two outputs — with the DFG definitions of
// Section V-B evaluated on it, plus its DOT form for visualization.
func (s *Study) Fig11() (string, error) {
	g := dfg.New("fig11")
	d1 := g.AddInput("D_IN,1")
	d2 := g.AddInput("D_IN,2")
	d3 := g.AddInput("D_IN,3")
	add1 := g.MustOp(dfg.OpAdd, d1, d2)
	div1 := g.MustOp(dfg.OpDiv, d2, d3)
	add2 := g.MustOp(dfg.OpAdd, add1, div1)
	sub2 := g.MustOp(dfg.OpSub, div1, d3)
	g.MustOutput("D_OUT,1", add2)
	g.MustOutput("D_OUT,2", sub2)
	if err := g.Validate(); err != nil {
		return "", err
	}
	st := g.ComputeStats()
	head := table("definition\tsymbol\tvalue", func(w *tabwriter.Writer) {
		fmt.Fprintf(w, "vertices\t|V|\t%d\n", st.V)
		fmt.Fprintf(w, "edges\t|E|\t%d\n", st.E)
		fmt.Fprintf(w, "input variables\t|V_IN|\t%d\n", st.VIn)
		fmt.Fprintf(w, "output variables\t|V_OUT|\t%d\n", st.VOut)
		fmt.Fprintf(w, "computation nodes\t|V_CMP|\t%d\n", st.VCmp)
		fmt.Fprintf(w, "DFG depth\tD\t%d\n", st.Depth)
		fmt.Fprintf(w, "max working set\tmax|WS|\t%d\n", st.MaxWS)
		fmt.Fprintf(w, "computation paths\t|P|\t%.0f\n", st.Paths)
	})
	var dot strings.Builder
	if err := g.WriteDOT(&dot); err != nil {
		return "", err
	}
	return head + "\n" + dot.String(), nil
}
