package core

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"accelwall/internal/montecarlo"
)

// BandJSON is the wire form of a Monte Carlo quantile band.
type BandJSON struct {
	P5  float64 `json:"p5"`
	P25 float64 `json:"p25"`
	P50 float64 `json:"p50"`
	P75 float64 `json:"p75"`
	P95 float64 `json:"p95"`
	Lo  float64 `json:"lo"`
	Hi  float64 `json:"hi"`
}

// NewBandJSON converts one band.
func NewBandJSON(b montecarlo.Band) BandJSON {
	return BandJSON{P5: b.P5, P25: b.P25, P50: b.P50, P75: b.P75, P95: b.P95, Lo: b.Lo, Hi: b.Hi}
}

// NodeBandJSON is the banded CMOS potential of one Figure 3a node.
type NodeBandJSON struct {
	NodeNM     float64  `json:"node_nm"`
	Throughput BandJSON `json:"throughput"`
	Efficiency BandJSON `json:"efficiency"`
}

// UncertaintyDomainJSON is the banded accelerator wall of one
// (domain, target) pair.
type UncertaintyDomainJSON struct {
	Domain             string   `json:"domain"`
	Target             string   `json:"target"`
	PointRemainLog     float64  `json:"point_remain_log"`
	PointRemainLinear  float64  `json:"point_remain_linear"`
	PhysLimit          BandJSON `json:"phys_limit"`
	RemainLog          BandJSON `json:"remain_log"`
	RemainLinear       BandJSON `json:"remain_linear"`
	FinalCSR           BandJSON `json:"final_csr"`
	PBelowTargetLog    float64  `json:"p_below_target_log"`
	PBelowTargetLinear float64  `json:"p_below_target_linear"`
}

// UncertaintyJSON is the wire form of a full Monte Carlo run. It is the
// payload of both `accelwall -uncertainty -json` and POST /v1/uncertainty.
type UncertaintyJSON struct {
	Replicates int                     `json:"replicates"`
	Failed     int                     `json:"failed"`
	Seed       int64                   `json:"seed"`
	CorpusSeed int64                   `json:"corpus_seed"`
	Confidence float64                 `json:"confidence"`
	GainTarget float64                 `json:"gain_target"`
	CMOSJitter float64                 `json:"cmos_jitter"`
	AreaFitA   BandJSON                `json:"area_fit_a"`
	AreaFitB   BandJSON                `json:"area_fit_b"`
	Nodes      []NodeBandJSON          `json:"nodes"`
	Domains    []UncertaintyDomainJSON `json:"domains"`
}

// NewUncertaintyJSON converts one Monte Carlo result.
func NewUncertaintyJSON(r *montecarlo.Result) UncertaintyJSON {
	out := UncertaintyJSON{
		Replicates: r.Replicates,
		Failed:     r.Failed,
		Seed:       r.Config.Seed,
		CorpusSeed: r.Config.CorpusSeed,
		Confidence: r.Config.Confidence,
		GainTarget: r.Config.GainTarget,
		CMOSJitter: r.Config.CMOSJitter,
		AreaFitA:   NewBandJSON(r.AreaFitA),
		AreaFitB:   NewBandJSON(r.AreaFitB),
	}
	for _, n := range r.Nodes {
		out.Nodes = append(out.Nodes, NodeBandJSON{
			NodeNM:     n.NodeNM,
			Throughput: NewBandJSON(n.Throughput),
			Efficiency: NewBandJSON(n.Efficiency),
		})
	}
	for _, d := range r.Domains {
		out.Domains = append(out.Domains, UncertaintyDomainJSON{
			Domain:             d.Domain.String(),
			Target:             TargetName(d.Target),
			PointRemainLog:     d.PointRemainLog,
			PointRemainLinear:  d.PointRemainLinear,
			PhysLimit:          NewBandJSON(d.PhysLimit),
			RemainLog:          NewBandJSON(d.RemainLog),
			RemainLinear:       NewBandJSON(d.RemainLinear),
			FinalCSR:           NewBandJSON(d.FinalCSR),
			PBelowTargetLog:    d.PBelowTargetLog,
			PBelowTargetLinear: d.PBelowTargetLinear,
		})
	}
	return out
}

// UncertaintyText renders a Monte Carlo result as the CLI's text report.
func UncertaintyText(r *montecarlo.Result) string {
	var sb strings.Builder
	conf := r.Config.Confidence * 100
	fmt.Fprintf(&sb, "Monte Carlo uncertainty: %d replicates (%d failed), seed %d, %.0f%% bands, ±%.0f%% CMOS jitter\n",
		r.Replicates, r.Failed, r.Config.Seed, conf, r.Config.CMOSJitter*100)
	fmt.Fprintf(&sb, "Corpus resampled from seed %d; bands are [lo, hi] at the %.0f%% level with the median in between.\n\n",
		r.Config.CorpusSeed, conf)

	fmt.Fprintf(&sb, "Figure 3b area model TC(D) = A*D^B across corpus resamples:\n")
	w := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintf(w, "  param\tlo\tmedian\thi\n")
	fmt.Fprintf(w, "  A\t%.4g\t%.4g\t%.4g\n", r.AreaFitA.Lo, r.AreaFitA.P50, r.AreaFitA.Hi)
	fmt.Fprintf(w, "  B\t%.4g\t%.4g\t%.4g\n", r.AreaFitB.Lo, r.AreaFitB.P50, r.AreaFitB.Hi)
	w.Flush()

	fmt.Fprintf(&sb, "\nCMOS potential per node (relative to the 45nm baseline, 250mm²/250W chip):\n")
	w = tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintf(w, "  node\tthroughput [lo, med, hi]\tefficiency [lo, med, hi]\n")
	for _, n := range r.Nodes {
		fmt.Fprintf(w, "  %gnm\t%.3g  %.3g  %.3g\t%.3g  %.3g  %.3g\n",
			n.NodeNM,
			n.Throughput.Lo, n.Throughput.P50, n.Throughput.Hi,
			n.Efficiency.Lo, n.Efficiency.P50, n.Efficiency.Hi)
	}
	w.Flush()

	fmt.Fprintf(&sb, "\nAccelerator-wall headroom at 5nm (remaining gain over today's best):\n")
	w = tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintf(w, "  domain\ttarget\tpoint log\tlog band [lo, med, hi]\tlinear band [lo, med, hi]\tP(log<%gx)\tP(lin<%gx)\n",
		r.Config.GainTarget, r.Config.GainTarget)
	for _, d := range r.Domains {
		fmt.Fprintf(w, "  %s\t%s\t%.3gx\t%.3g  %.3g  %.3g\t%.3g  %.3g  %.3g\t%.2f\t%.2f\n",
			d.Domain, TargetName(d.Target), d.PointRemainLog,
			d.RemainLog.Lo, d.RemainLog.P50, d.RemainLog.Hi,
			d.RemainLinear.Lo, d.RemainLinear.P50, d.RemainLinear.Hi,
			d.PBelowTargetLog, d.PBelowTargetLinear)
	}
	w.Flush()

	fmt.Fprintf(&sb, "\nChip-specialization return of each domain's newest chip (CSR band):\n")
	w = tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintf(w, "  domain\ttarget\tCSR [lo, med, hi]\tphys limit [lo, med, hi]\n")
	for _, d := range r.Domains {
		fmt.Fprintf(w, "  %s\t%s\t%.3g  %.3g  %.3g\t%.3g  %.3g  %.3g\n",
			d.Domain, TargetName(d.Target),
			d.FinalCSR.Lo, d.FinalCSR.P50, d.FinalCSR.Hi,
			d.PhysLimit.Lo, d.PhysLimit.P50, d.PhysLimit.Hi)
	}
	w.Flush()
	return sb.String()
}
