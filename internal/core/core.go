// Package core ties the accelerator-wall models together: it owns the
// fitted CMOS potential model and exposes one entry point per table and
// figure of the paper, each returning both typed rows (for programmatic
// use) and a rendered text table (for the CLI and the experiment log).
//
// A Study is cheap to construct; the expensive artifacts (the synthetic
// datasheet corpus and the regressions over it) are built once in New.
package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"text/tabwriter"

	"accelwall/internal/aladdin"
	"accelwall/internal/budget"
	"accelwall/internal/casestudy"
	"accelwall/internal/checkpoint"
	"accelwall/internal/chipdb"
	"accelwall/internal/cmos"
	"accelwall/internal/dfg"
	"accelwall/internal/gains"
	"accelwall/internal/projection"
	"accelwall/internal/stats"
	"accelwall/internal/sweep"
	"accelwall/internal/workloads"
)

// Study holds the fitted models every experiment draws on.
type Study struct {
	Corpus *chipdb.Corpus
	Budget *budget.Model
	Gains  *gains.Model
	// Sweep is the Table III grid used by the design-space experiments.
	// Defaults to the reduced grid; switch to sweep.Default() for the full
	// (slow) exploration.
	Sweep sweep.Params
	// Workers sizes the worker pool the design-space experiments (fig13,
	// fig14, table5) distribute their simulations over; <= 0 selects
	// GOMAXPROCS. Each sweep compiles its workload graph once and shares
	// the compiled state across the pool.
	Workers int
	// Ctx, when non-nil, bounds every parallel computation the study's
	// experiments run: cancelling it stops the sweep pools within one
	// chunk of work and surfaces the context's error. Nil means no bound
	// (context.Background()), preserving the original blocking behavior.
	Ctx context.Context
	// Ckpt, when non-nil, makes the long design-space experiments durable:
	// the Figure 13 sweep appends progress snapshots into this store, so a
	// killed run leaves its completed prefix on disk. Nil disables
	// checkpointing (the default).
	Ckpt *checkpoint.Store
	// CkptResume makes a checkpointed experiment restore the snapshot a
	// previous run left in Ckpt instead of starting cold. A snapshot from a
	// different workload or grid is refused with an error, never blended.
	CkptResume bool
	// CkptLogf, when non-nil, receives human-readable checkpoint progress
	// notes (resume counts, snapshot failures). Nil discards them.
	CkptLogf func(format string, args ...any)
}

// ckptLogf reports checkpoint progress through the study's logger, if any.
func (s *Study) ckptLogf(format string, args ...any) {
	if s.CkptLogf != nil {
		s.CkptLogf(format, args...)
	}
}

// fig13Sweep runs the Figure 13 design-space sweep over the study's grid,
// shared by the table, plot, and JSON renderings. With a checkpoint store
// attached the sweep is durable: progress snapshots land in the
// "sweep-fig13" log, CkptResume restores a prior run's completed prefix,
// and the log is removed once the sweep finishes (a finished run owes its
// successor nothing).
func (s *Study) fig13Sweep() ([]sweep.Fig13Row, sweep.Point, error) {
	spec, err := workloads.ByAbbrev("S3D")
	if err != nil {
		return nil, sweep.Point{}, err
	}
	g, err := spec.Build(0)
	if err != nil {
		return nil, sweep.Point{}, err
	}
	if s.Ckpt == nil {
		return sweep.Fig13Context(s.ctx(), g, s.Sweep, s.Workers)
	}
	const name = "sweep-fig13"
	var resume []byte
	if s.CkptResume {
		resume, err = s.Ckpt.ReadLast(name)
		if err != nil {
			if !errors.Is(err, checkpoint.ErrNoSnapshot) && !errors.Is(err, checkpoint.ErrCorrupt) {
				return nil, sweep.Point{}, fmt.Errorf("core: reading fig13 checkpoint: %w", err)
			}
			s.ckptLogf("fig13: no usable checkpoint (%v), starting cold", err)
			resume = nil
		}
	}
	log, err := s.Ckpt.OpenLog(name)
	if err != nil {
		return nil, sweep.Point{}, fmt.Errorf("core: opening fig13 checkpoint log: %w", err)
	}
	defer log.Close()
	rows, best, resumed, err := sweep.Fig13Checkpointed(s.ctx(), g, s.Sweep, s.Workers, &sweep.Checkpoint{
		Sink:    log,
		Resume:  resume,
		OnError: func(e error) { s.ckptLogf("fig13: checkpointing disabled: %v", e) },
	})
	if err != nil {
		return nil, sweep.Point{}, err
	}
	if resumed > 0 {
		s.ckptLogf("fig13: resumed from checkpoint, skipped %d unique design points", resumed)
	}
	log.Close()
	if err := s.Ckpt.Remove(name); err != nil {
		s.ckptLogf("fig13: could not remove finished checkpoint: %v", err)
	}
	return rows, best, nil
}

// ctx resolves the study's context, defaulting to Background.
func (s *Study) ctx() context.Context {
	if s.Ctx != nil {
		return s.Ctx
	}
	return context.Background()
}

// New builds a study over the synthetic datasheet corpus with the given
// seed and fits the budget model from it.
func New(seed int64) (*Study, error) {
	corpus := chipdb.Synthetic(seed)
	b, err := budget.Fit(corpus)
	if err != nil {
		return nil, fmt.Errorf("core: fitting budget model: %w", err)
	}
	return &Study{
		Corpus: corpus,
		Budget: b,
		Gains:  gains.NewModel(b),
		Sweep:  sweep.Reduced(),
	}, nil
}

// NewPublished builds a study that uses the paper's published regression
// constants instead of corpus fits — the reference configuration for
// reproducing downstream figures exactly.
func NewPublished() *Study {
	b := budget.Published()
	return &Study{
		Corpus: nil,
		Budget: b,
		Gains:  gains.NewModel(b),
		Sweep:  sweep.Reduced(),
	}
}

// table renders rows through a tabwriter.
func table(header string, write func(w *tabwriter.Writer)) string {
	var buf bytes.Buffer
	w := tabwriter.NewWriter(&buf, 2, 4, 2, ' ', 0)
	if header != "" {
		fmt.Fprintln(w, header)
	}
	write(w)
	w.Flush()
	return buf.String()
}

// Fig1 renders the Bitcoin ASIC evolution (Figure 1).
func (s *Study) Fig1() (string, error) {
	rows, err := casestudy.Fig1()
	if err != nil {
		return "", err
	}
	return table("chip\tyear\tnode\tperf[x]\ttransistor-perf[x]\tCSR[x]", func(w *tabwriter.Writer) {
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%.1f\t%gnm\t%.1f\t%.1f\t%.2f\n",
				r.Name, r.Year, r.NodeNM, r.RelPerformance, r.TransistorPerformance, r.CSR)
		}
	}), nil
}

// Fig3a renders the device-scaling curves (Figure 3a).
func (s *Study) Fig3a() (string, error) {
	rows, err := cmos.Fig3a()
	if err != nil {
		return "", err
	}
	return table("metric\tnode\trelative", func(w *tabwriter.Writer) {
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%gnm\t%.3f\n", r.Metric, r.NodeNM, r.Value)
		}
	}), nil
}

// Fig3b renders the transistor-count area model (Figure 3b): the fitted
// power law and a per-era summary of the corpus scatter.
func (s *Study) Fig3b() (string, error) {
	if s.Corpus == nil {
		return "", errors.New("core: Fig3b requires a datasheet corpus (use New, not NewPublished)")
	}
	rows, fit, err := budget.Fig3b(s.Corpus)
	if err != nil {
		return "", err
	}
	counts := make(map[cmos.Era]int)
	for _, r := range rows {
		counts[r.Era]++
	}
	head := fmt.Sprintf("TC(D) = %.3g x D^%.3f   (R² %.3f, published: %.3g x D^%.3f)\nera\tchips",
		fit.A, fit.B, fit.R2, chipdb.TCFitA, chipdb.TCFitB)
	return table(head, func(w *tabwriter.Writer) {
		for _, era := range cmos.Eras() {
			if n := counts[era]; n > 0 {
				fmt.Fprintf(w, "%s\t%d\n", era, n)
			}
		}
	}), nil
}

// Fig3c renders the per-era TCf-vs-TDP power model (Figure 3c).
func (s *Study) Fig3c() (string, error) {
	if s.Corpus == nil {
		return "", errors.New("core: Fig3c requires a datasheet corpus (use New, not NewPublished)")
	}
	rows, err := budget.Fig3c(s.Corpus)
	if err != nil {
		return "", err
	}
	return table("era\tfit TC[1e9]*f[GHz]\tchips\tprojection", func(w *tabwriter.Writer) {
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%.3g x TDP^%.3f\t%d\t%v\n", r.Era, r.Curve.A, r.Curve.B, r.N, r.Projection)
		}
	}), nil
}

// Fig3d renders the physical chip-gain grid (Figure 3d).
func (s *Study) Fig3d() (string, error) {
	rows, err := s.Gains.Fig3d()
	if err != nil {
		return "", err
	}
	return table("target\tnode\tdie[mm2]\tzone\tgain[x]\tpower-capped", func(w *tabwriter.Writer) {
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%gnm\t%g\t%s\t%.1f\t%v\n",
				r.Target, r.NodeNM, r.DieMM2, r.Zone.Label, r.Gain, r.Capped)
		}
	}), nil
}

// Fig4 renders the video decoder study (Figures 4a and 4c).
func (s *Study) Fig4(target gains.Target) (string, error) {
	rows, err := casestudy.Fig4(target)
	if err != nil {
		return "", err
	}
	return table(fmt.Sprintf("[%s]\nchip\tyear\tnode\tgain[x]\tCSR[x]", target), func(w *tabwriter.Writer) {
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%.1f\t%gnm\t%.1f\t%.2f\n", r.Pub, r.Year, r.NodeNM, r.RelGain, r.CSR)
		}
	}), nil
}

// Fig4b renders the decoder hardware-budget panel (Figure 4b).
func (s *Study) Fig4b() (string, error) {
	rows, err := casestudy.Fig4b()
	if err != nil {
		return "", err
	}
	return table("chip\tnode\ttransistors[x]\tfreq[MHz]", func(w *tabwriter.Writer) {
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%gnm\t%.1f\t%.0f\n", r.Pub, r.NodeNM, r.RelTransistors, r.FreqMHz)
		}
	}), nil
}

// Fig5 renders the GPU frame-rate study (Figures 5a and 5b).
func (s *Study) Fig5(target gains.Target) (string, error) {
	series, err := casestudy.Fig5(target)
	if err != nil {
		return "", err
	}
	return table(fmt.Sprintf("[%s]\napp\tfinal-gain[x]\tfinal-CSR[x]\ttrend", target), func(w *tabwriter.Writer) {
		for _, sr := range series {
			fmt.Fprintf(w, "%s\t%.2f\t%.2f\t%s\n", sr.App.Name, sr.TotalGain, sr.FinalCSR, sr.TrendRel)
		}
	}), nil
}

// Fig6 renders the architecture + CMOS throughput scaling (Figure 6).
func (s *Study) Fig6() (string, error) { return s.archScaling(gains.TargetThroughput) }

// Fig7 renders the architecture + CMOS efficiency scaling (Figure 7).
func (s *Study) Fig7() (string, error) { return s.archScaling(gains.TargetEfficiency) }

func (s *Study) archScaling(target gains.Target) (string, error) {
	points, err := casestudy.ArchScaling(target)
	if err != nil {
		return "", err
	}
	return table(fmt.Sprintf("[%s]\narch\tnode\tyear\tgain-vs-Tesla[x]\tCSR[x]", target), func(w *tabwriter.Writer) {
		for _, p := range points {
			fmt.Fprintf(w, "%s\t%gnm\t%.1f\t%.2f\t%.2f\n", p.Arch, p.NodeNM, p.Year, p.RelGain, p.CSR)
		}
	}), nil
}

// Fig8 renders the FPGA CNN study (Figures 8a and 8c) for both models.
func (s *Study) Fig8(target gains.Target) (string, error) {
	var buf bytes.Buffer
	for _, model := range []casestudy.CNNModel{casestudy.AlexNet, casestudy.VGG16} {
		rows, err := casestudy.Fig8(model, target)
		if err != nil {
			return "", err
		}
		buf.WriteString(table(fmt.Sprintf("[%s %s]\nimpl\tyear\tnode\tgain[x]\tCSR[x]", model, target), func(w *tabwriter.Writer) {
			for _, r := range rows {
				fmt.Fprintf(w, "%s\t%.1f\t%gnm\t%.1f\t%.2f\n", r.Pub, r.Year, r.NodeNM, r.RelGain, r.CSR)
			}
		}))
	}
	return buf.String(), nil
}

// Fig8b renders the FPGA resource-utilization panel (Figure 8b).
func (s *Study) Fig8b() (string, error) {
	var buf bytes.Buffer
	for _, model := range []casestudy.CNNModel{casestudy.AlexNet, casestudy.VGG16} {
		rows := casestudy.Fig8b(model)
		buf.WriteString(table(fmt.Sprintf("[%s]\nimpl\t%%LUT\t%%DSP\t%%BRAM\tfreq[MHz]", model), func(w *tabwriter.Writer) {
			for _, r := range rows {
				fmt.Fprintf(w, "%s\t%.0f\t%.0f\t%.0f\t%.0f\n", r.Pub, r.UtilLUT, r.UtilDSP, r.UtilBRAM, r.FreqMHz)
			}
		}))
	}
	return buf.String(), nil
}

// Fig9 renders the cross-platform Bitcoin study (Figure 9).
func (s *Study) Fig9(target gains.Target) (string, error) {
	rows, err := casestudy.Fig9(target)
	if err != nil {
		return "", err
	}
	return table(fmt.Sprintf("[%s]\nchip\tkind\tnode\tgain[x]\tCSR[x]", target), func(w *tabwriter.Writer) {
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%s\t%gnm\t%.3g\t%.3g\n", r.Name, r.Kind, r.NodeNM, r.RelGain, r.CSR)
		}
	}), nil
}

// Table2 renders the specialization-concept complexity bounds (Table II)
// evaluated on every Table IV workload at its default size.
func (s *Study) Table2() (string, error) {
	var buf bytes.Buffer
	for _, spec := range workloads.TableIV() {
		g, err := spec.Build(0)
		if err != nil {
			return "", fmt.Errorf("core: building %s: %w", spec.Abbrev, err)
		}
		st := g.ComputeStats()
		bounds, err := dfg.LimitTable(st)
		if err != nil {
			return "", err
		}
		buf.WriteString(table(fmt.Sprintf("[%s] |V|=%d |E|=%d D=%d max|WS|=%d |Vin|=%d |Vout|=%d\ncomponent\tconcept\ttime\tspace", spec.Abbrev, st.V, st.E, st.Depth, st.MaxWS, st.VIn, st.VOut), func(w *tabwriter.Writer) {
			for _, b := range bounds {
				fmt.Fprintf(w, "%s\t%s\t%s = %.3g\t%s = %.3g\n",
					b.Component, b.Concept, b.TimeExpr, b.Time, b.SpaceExpr, b.Space)
			}
		}))
	}
	return buf.String(), nil
}

// Fig13 renders the 3D-stencil design-space sweep (Figure 13): the
// runtime/power cloud and the energy-efficiency optimum.
func (s *Study) Fig13() (string, error) {
	rows, best, err := s.fig13Sweep()
	if err != nil {
		return "", err
	}
	head := fmt.Sprintf("best energy efficiency: node %gnm partition %d simplification %d fusion %v\nnode\tpartition\tsimpl\tfusion\truntime[ns]\tpower\teff",
		best.Design.NodeNM, best.Design.Partition, best.Design.Simplification, best.Design.Fusion)
	return table(head, func(w *tabwriter.Writer) {
		for _, r := range rows {
			fmt.Fprintf(w, "%gnm\t%d\t%d\t%v\t%.1f\t%.3g\t%.3g\n",
				r.NodeNM, r.Partition, r.Simplification, r.Fusion, r.RuntimeNS, r.PowerW, r.EnergyEff)
		}
	}), nil
}

// Fig14 renders the per-application gain attribution (Figure 14) for both
// target functions across all sixteen workloads.
func (s *Study) Fig14() (string, error) {
	var buf bytes.Buffer
	for _, objective := range []sweep.Objective{sweep.Performance, sweep.Efficiency} {
		attrs, err := s.Fig14Attributions(objective)
		if err != nil {
			return "", err
		}
		buf.WriteString(table(fmt.Sprintf("[%s]\napp\tgain[x]\tCSR[x]\t%%CMOS\t%%het\t%%simp\t%%part", objective), func(w *tabwriter.Writer) {
			for _, a := range attrs {
				fmt.Fprintf(w, "%s\t%.0f\t%.2f\t%.0f\t%.0f\t%.0f\t%.0f\n",
					a.App, a.Total, a.CSR, a.PctCMOS, a.PctHeterogeneity, a.PctSimplification, a.PctPartitioning)
			}
		}))
	}
	return buf.String(), nil
}

// Fig14Attributions computes the Figure 14 decomposition rows for one
// objective, in Table IV order plus an AVG row (geometric mean of totals,
// arithmetic mean of shares).
func (s *Study) Fig14Attributions(objective sweep.Objective) ([]sweep.Attribution, error) {
	var attrs []sweep.Attribution
	var totals, csrs []float64
	avg := sweep.Attribution{App: "AVG", Objective: objective}
	for _, spec := range workloads.TableIV() {
		g, err := spec.Build(0)
		if err != nil {
			return nil, fmt.Errorf("core: building %s: %w", spec.Abbrev, err)
		}
		a, err := sweep.AttributeParallelContext(s.ctx(), spec.Abbrev, g, s.Sweep, objective, s.Workers)
		if err != nil {
			return nil, fmt.Errorf("core: attributing %s: %w", spec.Abbrev, err)
		}
		attrs = append(attrs, a)
		totals = append(totals, a.Total)
		csrs = append(csrs, a.CSR)
		avg.PctCMOS += a.PctCMOS
		avg.PctHeterogeneity += a.PctHeterogeneity
		avg.PctSimplification += a.PctSimplification
		avg.PctPartitioning += a.PctPartitioning
	}
	n := float64(len(attrs))
	avg.PctCMOS /= n
	avg.PctHeterogeneity /= n
	avg.PctSimplification /= n
	avg.PctPartitioning /= n
	var err error
	if avg.Total, err = stats.GeoMean(totals); err != nil {
		return nil, err
	}
	if avg.CSR, err = stats.GeoMean(csrs); err != nil {
		return nil, err
	}
	return append(attrs, avg), nil
}

// Fig15 renders the accelerator-wall performance projections (Figure 15).
func (s *Study) Fig15() (string, error) { return s.wall(projection.Fig15) }

// Fig16 renders the accelerator-wall efficiency projections (Figure 16).
func (s *Study) Fig16() (string, error) { return s.wall(projection.Fig16) }

func (s *Study) wall(run func() ([]projection.Projection, error)) (string, error) {
	projs, err := run()
	if err != nil {
		return "", err
	}
	return table("domain\ttarget\tphys-limit[x]\tbest[x]\twall(log)\twall(linear)\theadroom", func(w *tabwriter.Writer) {
		for _, p := range projs {
			fmt.Fprintf(w, "%s\t%s\t%.3g\t%.3g\t%.4g %s\t%.4g %s\t%.1f-%.1fx\n",
				p.Domain, p.Target, p.PhysLimit, p.CurrentBest,
				p.ProjLog*p.BaselineAbs, p.Unit, p.ProjLinear*p.BaselineAbs, p.Unit,
				p.RemainLog, p.RemainLinear)
		}
	}), nil
}

// TableV renders the limit-study physical parameters (Table V).
func (s *Study) TableV() (string, error) {
	rows := projection.TableV()
	return table("domain\tplatform\tdie min/max [mm2]\tTDP[W]\tfreq[MHz]", func(w *tabwriter.Writer) {
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%s\t%g / %g\t%g\t%g\n",
				r.Domain, r.Platform, r.DieMinMM2, r.DieMaxMM2, r.TDPW, r.FreqMHz)
		}
	}), nil
}

// Experiment couples an identifier with its runner, powering the CLI and
// the experiment log.
type Experiment struct {
	ID    string
	Title string
	Run   func(*Study) (string, error)
}

// Experiments returns every reproducible table and figure, in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{ID: "fig1", Title: "Evolution of Bitcoin Mining ASIC Chips", Run: (*Study).Fig1},
		{ID: "fig2", Title: "Abstraction Layers: Traditional and Accelerated Systems", Run: (*Study).Fig2},
		{ID: "fig3a", Title: "CMOS Device Scaling", Run: (*Study).Fig3a},
		{ID: "fig3b", Title: "Transistor Count Given Area and CMOS Node", Run: (*Study).Fig3b},
		{ID: "fig3c", Title: "Transistor Count Given Chip Frequency and TDP", Run: (*Study).Fig3c},
		{ID: "fig3d", Title: "Physical Chip Gains", Run: (*Study).Fig3d},
		{ID: "fig4a", Title: "Video Decoder ASICs: Performance + CSR", Run: func(s *Study) (string, error) { return s.Fig4(gains.TargetThroughput) }},
		{ID: "fig4b", Title: "Video Decoder ASICs: Hardware Budget", Run: (*Study).Fig4b},
		{ID: "fig4c", Title: "Video Decoder ASICs: Energy Efficiency + CSR", Run: func(s *Study) (string, error) { return s.Fig4(gains.TargetEfficiency) }},
		{ID: "fig5a", Title: "GPU Frame Rates: Throughput", Run: func(s *Study) (string, error) { return s.Fig5(gains.TargetThroughput) }},
		{ID: "fig5b", Title: "GPU Frame Rates: Energy Efficiency", Run: func(s *Study) (string, error) { return s.Fig5(gains.TargetEfficiency) }},
		{ID: "fig6", Title: "Architecture + CMOS Scaling: Throughput", Run: (*Study).Fig6},
		{ID: "fig7", Title: "Architecture + CMOS Scaling: Energy Efficiency", Run: (*Study).Fig7},
		{ID: "fig8a", Title: "FPGA CNNs: Performance + CSR", Run: func(s *Study) (string, error) { return s.Fig8(gains.TargetThroughput) }},
		{ID: "fig8b", Title: "FPGA CNNs: Resource Utilization", Run: (*Study).Fig8b},
		{ID: "fig8c", Title: "FPGA CNNs: Energy Efficiency + CSR", Run: func(s *Study) (string, error) { return s.Fig8(gains.TargetEfficiency) }},
		{ID: "fig9a", Title: "Bitcoin Mining: Performance per Area", Run: func(s *Study) (string, error) { return s.Fig9(gains.TargetThroughput) }},
		{ID: "fig9b", Title: "Bitcoin Mining: Energy Efficiency", Run: func(s *Study) (string, error) { return s.Fig9(gains.TargetEfficiency) }},
		{ID: "fig11", Title: "DFG Example: 3 Inputs, 2 Computation Stages, 2 Outputs", Run: (*Study).Fig11},
		{ID: "table1", Title: "Chip Specialization Concepts (TPU Examples)", Run: (*Study).Table1},
		{ID: "table2", Title: "Specialization Concept Complexity Limits", Run: (*Study).Table2},
		{ID: "table3", Title: "CMOS-Specialization Sweep Parameters", Run: (*Study).Table3},
		{ID: "table4", Title: "Evaluated Applications and Domains", Run: (*Study).Table4},
		{ID: "fig13", Title: "3D Stencil Power/Timing/CMOS Sweep", Run: (*Study).Fig13},
		{ID: "fig14", Title: "Specialization and CMOS Accelerator Gains", Run: (*Study).Fig14},
		{ID: "table5", Title: "Accelerator Wall: Physical Parameters", Run: (*Study).TableV},
		{ID: "fig15", Title: "Accelerator Performance Projections", Run: (*Study).Fig15},
		{ID: "fig16", Title: "Accelerator Energy Efficiency Projections", Run: (*Study).Fig16},
	}
}

// ExperimentByID resolves one experiment, searching the paper experiments
// and the extensions.
func ExperimentByID(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	for _, e := range Extensions() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("core: unknown experiment %q", id)
}

// Bench exposes a cheap simulation for the benchmark harness: it simulates
// one workload at one design point, exercising the whole
// workloads→aladdin stack.
func Bench(abbrev string, d aladdin.Design) (aladdin.Result, error) {
	spec, err := workloads.ByAbbrev(abbrev)
	if err != nil {
		return aladdin.Result{}, err
	}
	g, err := spec.Build(0)
	if err != nil {
		return aladdin.Result{}, err
	}
	return aladdin.Simulate(g, d)
}
