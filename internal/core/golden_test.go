package core

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from current output")

// goldenIDs lists the experiments whose rendered output is pinned byte-for
// byte. They depend only on embedded datasets and published constants, so
// any diff is a real behaviour change. Corpus- and sweep-dependent
// experiments are excluded (seeds and grids are configurable).
var goldenIDs = []string{"fig1", "fig2", "fig3a", "fig3d", "fig4a", "fig4b", "fig4c", "fig9a", "fig9b", "fig11", "table1", "table2", "table5", "fig15", "fig16"}

func TestGoldenOutputs(t *testing.T) {
	s := NewPublished()
	for _, id := range goldenIDs {
		id := id
		t.Run(id, func(t *testing.T) {
			e, err := ExperimentByID(id)
			if err != nil {
				t.Fatal(err)
			}
			out, err := e.Run(s)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", id+".golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if string(want) != out {
				t.Errorf("output of %s diverged from golden file.\n--- got ---\n%s\n--- want ---\n%s", id, out, want)
			}
		})
	}
}
