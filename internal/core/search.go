package core

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"accelwall/internal/search"
)

// SearchPointJSON is one Pareto-frontier member on the wire: the design,
// its full simulation result, and the objective values in request order.
type SearchPointJSON struct {
	Design DesignJSON `json:"design"`
	Result ResultJSON `json:"result"`
	Values []float64  `json:"values"`
}

// SearchJSON is the design-space search wire payload, shared by
// POST /v1/search, the search job result file, and accelwall -search
// -json. It deliberately excludes the resumed-evaluation count (like
// UncertaintyJSON): a resumed search's payload is byte-identical to an
// uninterrupted one.
type SearchJSON struct {
	Workload    string            `json:"workload,omitempty"`
	Strategy    string            `json:"strategy"`
	Objectives  []string          `json:"objectives"`
	Population  int               `json:"population"`
	Generations int               `json:"generations"`
	Seed        int64             `json:"seed"`
	MaxArea     float64           `json:"max_area,omitempty"`
	MaxPowerW   float64           `json:"max_power_w,omitempty"`
	SpaceSize   int               `json:"space_size"`
	Evaluations int               `json:"evaluations"`
	Frontier    []SearchPointJSON `json:"frontier"`
}

// NewSearchJSON renders a search result. cfg must be the normalized
// config the run used.
func NewSearchJSON(workload string, cfg search.Config, res *search.Result) SearchJSON {
	out := SearchJSON{
		Workload:    workload,
		Strategy:    res.Strategy.String(),
		Objectives:  make([]string, len(res.Objectives)),
		Population:  cfg.Population,
		Generations: res.Generations,
		Seed:        cfg.Seed,
		MaxArea:     cfg.Constraints.MaxArea,
		MaxPowerW:   cfg.Constraints.MaxPowerW,
		SpaceSize:   res.SpaceSize,
		Evaluations: res.Evaluations,
		Frontier:    make([]SearchPointJSON, len(res.Frontier)),
	}
	for i, o := range res.Objectives {
		out.Objectives[i] = o.String()
	}
	for i, p := range res.Frontier {
		out.Frontier[i] = SearchPointJSON{
			Design: NewDesignJSON(p.Design),
			Result: NewResultJSON(p.Result),
			Values: p.Values,
		}
	}
	return out
}

// SearchText renders a search result as the CLI's text report.
func SearchText(workload string, cfg search.Config, res *search.Result) string {
	var b strings.Builder
	names := make([]string, len(res.Objectives))
	for i, o := range res.Objectives {
		names[i] = o.String()
	}
	fmt.Fprintf(&b, "design-space search: %s strategy=%s objectives=%s\n",
		workload, res.Strategy, strings.Join(names, ","))
	fmt.Fprintf(&b, "population %d, %d generations, seed %d: %d of %d designs evaluated (%.1f%%), frontier %d points\n",
		cfg.Population, res.Generations, cfg.Seed, res.Evaluations, res.SpaceSize,
		100*float64(res.Evaluations)/float64(res.SpaceSize), len(res.Frontier))
	if cfg.Constraints.MaxArea > 0 {
		fmt.Fprintf(&b, "constraint: area <= %g\n", cfg.Constraints.MaxArea)
	}
	if cfg.Constraints.MaxPowerW > 0 {
		fmt.Fprintf(&b, "constraint: power <= %g W\n", cfg.Constraints.MaxPowerW)
	}
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "node\tpartition\tsimpl\tfusion\t%s\n", strings.Join(names, "\t"))
	for _, p := range res.Frontier {
		fmt.Fprintf(w, "%gnm\t%d\t%d\t%v", p.Design.NodeNM, p.Design.Partition,
			p.Design.Simplification, p.Design.Fusion)
		for _, v := range p.Values {
			fmt.Fprintf(w, "\t%.4g", v)
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	return b.String()
}
