package core

import (
	"fmt"
	"text/tabwriter"

	"accelwall/internal/sweep"
	"accelwall/internal/workloads"
)

// Table1 renders the chip-specialization concept taxonomy with the TPU
// examples of Table I / Figure 10: each of the three concepts applied to
// each of the three processing components, as annotated on Google's
// 28 nm Tensor Processing Unit.
func (s *Study) Table1() (string, error) {
	type cell struct{ component, concept, example string }
	cells := []cell{
		{"Memory", "Simplification", "simple DDR3 chips, interfaces, and physical memory space"},
		{"Memory", "Partitioning", "memory module banking storing NN layer weights"},
		{"Memory", "Heterogeneity", "hybrid memory for input and intermediary results"},
		{"Communication", "Simplification", "simple FIFO communication"},
		{"Communication", "Partitioning", "concurrent FIFOs for weights and systolic array data"},
		{"Communication", "Heterogeneity", "software-defined DMA interface for chip I/O"},
		{"Computation", "Simplification", "multiply+add units with small precision (8-bit integers)"},
		{"Computation", "Partitioning", "parallel multiply+add paths and systolic array data reuse"},
		{"Computation", "Heterogeneity", "non-linear activation unit (e.g. ReLU)"},
	}
	return table("component\tconcept\tTPU example", func(w *tabwriter.Writer) {
		for _, c := range cells {
			fmt.Fprintf(w, "%s\t%s\t%s\n", c.component, c.concept, c.example)
		}
	}), nil
}

// Table3 renders the CMOS-specialization sweep parameters of Table III,
// alongside the grid this study is currently configured with.
func (s *Study) Table3() (string, error) {
	full := sweep.Default()
	return table("parameter\tTable III values\tconfigured grid", func(w *tabwriter.Writer) {
		fmt.Fprintf(w, "Partitioning Factor\t%d values: %d .. %d\t%d values\n",
			len(full.Partitions), full.Partitions[0], full.Partitions[len(full.Partitions)-1], len(s.Sweep.Partitions))
		fmt.Fprintf(w, "Simplification Degree\t%d values: %d .. %d\t%d values\n",
			len(full.Simplifications), full.Simplifications[0], full.Simplifications[len(full.Simplifications)-1], len(s.Sweep.Simplifications))
		fmt.Fprintf(w, "CMOS Process (nm)\t%v\t%v\n", full.Nodes, s.Sweep.Nodes)
	}), nil
}

// Table4 renders the evaluated applications of Table IV together with the
// structural statistics of each kernel's default dataflow graph — the
// quantities the Table II bounds are expressed in.
func (s *Study) Table4() (string, error) {
	type row struct {
		abbrev, name, domain          string
		v, e, depth, maxWS, vin, vout int
	}
	var rows []row
	for _, spec := range workloads.TableIV() {
		g, err := spec.Build(0)
		if err != nil {
			return "", fmt.Errorf("core: building %s: %w", spec.Abbrev, err)
		}
		st := g.ComputeStats()
		rows = append(rows, row{spec.Abbrev, spec.Name, spec.Domain, st.V, st.E, st.Depth, st.MaxWS, st.VIn, st.VOut})
	}
	return table("abbrev\tapplication\tdomain\t|V|\t|E|\tD\tmax|WS|\t|Vin|\t|Vout|", func(w *tabwriter.Writer) {
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%s\t%s\t%d\t%d\t%d\t%d\t%d\t%d\n",
				r.abbrev, r.name, r.domain, r.v, r.e, r.depth, r.maxWS, r.vin, r.vout)
		}
	}), nil
}
