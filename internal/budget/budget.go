// Package budget implements the paper's transistor budget models
// (Section III).
//
// Two models are fitted from the chip-datasheet corpus:
//
//   - The area model (Figure 3b): transistor count as a function of the
//     density factor D = Area/Node² [mm²/nm²], fitted as the power law
//     TC(D) = A·D^B by logarithmic regression. Empirically B < 1 — count
//     scales sub-linearly in D because "for larger chips the design
//     complexity makes it harder to fully-utilize the chip".
//
//   - The power model (Figure 3c): TC[1e9]·f[GHz] as a function of TDP,
//     fitted per node era. Power limitations restrict the fraction of
//     active transistors (dark silicon), so given a TDP, node, and
//     frequency the model yields the number of transistors a chip can
//     actually keep switching.
//
// A Model combines both and is the "CMOS potential" input the chip-gain
// model consumes.
package budget

import (
	"errors"
	"fmt"
	"sort"

	"accelwall/internal/chipdb"
	"accelwall/internal/cmos"
	"accelwall/internal/stats"
)

// ErrNoEraData is returned when a corpus lacks chips for a requested era.
var ErrNoEraData = errors.New("budget: no corpus data for era")

// EraFit is the fitted Figure 3c curve of one node era:
// TC[1e9]·f[GHz] = Curve.A · TDP^Curve.B.
type EraFit struct {
	Era   cmos.Era
	Curve stats.PowerLaw
	N     int // number of corpus chips behind the fit
}

// Model is the fitted transistor budget model.
type Model struct {
	// TC is the Figure 3b area model TC(D) = A·D^B (absolute transistors).
	TC stats.PowerLaw
	// ByEra holds the Figure 3c power model per node era.
	ByEra map[cmos.Era]EraFit
}

// Fit builds the budget model from a datasheet corpus. The corpus must
// contain at least two chips overall and at least two chips in every era it
// covers; eras with no chips are simply absent from ByEra.
func Fit(c *chipdb.Corpus) (*Model, error) {
	if c == nil || c.Len() < 2 {
		return nil, fmt.Errorf("budget: corpus too small to fit (%d chips)", corpusLen(c))
	}
	xs := make([]float64, 0, c.Len())
	ys := make([]float64, 0, c.Len())
	for _, ch := range c.Chips {
		xs = append(xs, ch.DensityFactor())
		ys = append(ys, ch.Transistors)
	}
	tc, err := stats.FitPowerLaw(xs, ys)
	if err != nil {
		return nil, fmt.Errorf("budget: fitting area model: %w", err)
	}
	m := &Model{TC: tc, ByEra: make(map[cmos.Era]EraFit)}
	for era, sub := range c.ByEra() {
		ex := make([]float64, 0, sub.Len())
		ey := make([]float64, 0, sub.Len())
		for _, ch := range sub.Chips {
			ex = append(ex, ch.TDPW)
			ey = append(ey, ch.TCf())
		}
		curve, err := stats.FitPowerLaw(ex, ey)
		if err != nil {
			return nil, fmt.Errorf("budget: fitting power model for era %v: %w", era, err)
		}
		m.ByEra[era] = EraFit{Era: era, Curve: curve, N: sub.Len()}
	}
	return m, nil
}

func corpusLen(c *chipdb.Corpus) int {
	if c == nil {
		return 0
	}
	return c.Len()
}

// Published returns a budget model carrying the regression constants printed
// in the paper instead of corpus-fitted ones: TC(D) = 4.99e9·D^0.877 and the
// four Figure 3c curves. It is the reference model used when reproducing
// downstream figures exactly.
func Published() *Model {
	m := &Model{
		TC:    stats.PowerLaw{A: chipdb.TCFitA, B: chipdb.TCFitB},
		ByEra: make(map[cmos.Era]EraFit),
	}
	for _, f := range chipdb.PublishedTCfTDP {
		m.ByEra[f.Era] = EraFit{Era: f.Era, Curve: stats.PowerLaw{A: f.A, B: f.B}}
	}
	// The oldest era uses the extrapolated curve (the paper plots Figure 3c
	// only from 55 nm down).
	m.ByEra[cmos.Era180to90] = EraFit{Era: cmos.Era180to90, Curve: stats.PowerLaw{A: chipdb.Era180Curve.A, B: chipdb.Era180Curve.B}}
	return m
}

// TransistorsFromArea estimates the transistor count of a chip with the
// given die area fabricated at the given node, via the Figure 3b area model.
func (m *Model) TransistorsFromArea(nodeNM, dieMM2 float64) (float64, error) {
	if nodeNM <= 0 || dieMM2 <= 0 {
		return 0, fmt.Errorf("budget: non-positive node (%g) or area (%g)", nodeNM, dieMM2)
	}
	d := dieMM2 / (nodeNM * nodeNM)
	return m.TC.Eval(d), nil
}

// eraFitFor resolves the power-model curve for a node, falling back to the
// nearest covered era when the node's own era is missing from the corpus.
func (m *Model) eraFitFor(nodeNM float64) (EraFit, error) {
	era, err := cmos.EraOf(nodeNM)
	if err != nil {
		return EraFit{}, err
	}
	if f, ok := m.ByEra[era]; ok {
		return f, nil
	}
	// Nearest covered era by enum distance; ties resolve to the older era
	// (conservative: older curves yield fewer active transistors).
	var candidates []cmos.Era
	for e := range m.ByEra {
		candidates = append(candidates, e)
	}
	if len(candidates) == 0 {
		return EraFit{}, fmt.Errorf("%w: %v (model has no era fits)", ErrNoEraData, era)
	}
	sort.Slice(candidates, func(i, j int) bool {
		di := absInt(int(candidates[i]) - int(era))
		dj := absInt(int(candidates[j]) - int(era))
		if di != dj {
			return di < dj
		}
		return candidates[i] < candidates[j]
	})
	return m.ByEra[candidates[0]], nil
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// ActiveTransistors returns the number of transistors a chip at the given
// node can keep active under the TDP envelope while running at freqGHz,
// derived by inverting the era's Figure 3c curve:
//
//	TC = EraCurve(TDP) / f   (in 1e9 units, converted to absolute)
//
// This is the paper's procedure: "Given the TDP, CMOS node, and frequency,
// we use our model to derive the number of active chip transistors."
func (m *Model) ActiveTransistors(nodeNM, tdpW, freqGHz float64) (float64, error) {
	if tdpW <= 0 || freqGHz <= 0 {
		return 0, fmt.Errorf("budget: non-positive TDP (%g) or frequency (%g)", tdpW, freqGHz)
	}
	fit, err := m.eraFitFor(nodeNM)
	if err != nil {
		return 0, err
	}
	return fit.Curve.Eval(tdpW) / freqGHz * 1e9, nil
}

// BudgetTransistors returns the effective transistor budget of a chip: the
// area-limited count capped by the power-limited active count. This is the
// quantity the chip-gain model treats as the usable physical budget.
func (m *Model) BudgetTransistors(nodeNM, dieMM2, tdpW, freqGHz float64) (float64, error) {
	area, err := m.TransistorsFromArea(nodeNM, dieMM2)
	if err != nil {
		return 0, err
	}
	active, err := m.ActiveTransistors(nodeNM, tdpW, freqGHz)
	if err != nil {
		return 0, err
	}
	if active < area {
		return active, nil
	}
	return area, nil
}

// PowerCapped reports whether a chip configuration is limited by its TDP
// envelope rather than by its die area.
func (m *Model) PowerCapped(nodeNM, dieMM2, tdpW, freqGHz float64) (bool, error) {
	area, err := m.TransistorsFromArea(nodeNM, dieMM2)
	if err != nil {
		return false, err
	}
	active, err := m.ActiveTransistors(nodeNM, tdpW, freqGHz)
	if err != nil {
		return false, err
	}
	return active < area, nil
}

// Fig3bRow is one sample of the Figure 3b scatter/fit: a corpus chip's
// density factor and transistor count with its era label, plus the model
// prediction at that density factor.
type Fig3bRow struct {
	Era       cmos.Era
	D         float64 // density factor, mm²/nm²
	TC        float64 // datasheet transistor count
	Predicted float64 // TC(D) from the fitted model
}

// Fig3b reproduces the data behind Figure 3b from a corpus: every chip's
// (D, TC) point plus the fitted curve evaluated at that D. The fitted model
// itself is returned alongside so callers can print the
// "TC(D) = A·D^B" annotation.
func Fig3b(c *chipdb.Corpus) ([]Fig3bRow, stats.PowerLaw, error) {
	m, err := Fit(c)
	if err != nil {
		return nil, stats.PowerLaw{}, err
	}
	rows := make([]Fig3bRow, 0, c.Len())
	for _, ch := range c.Chips {
		era, err := cmos.EraOf(ch.NodeNM)
		if err != nil {
			continue
		}
		d := ch.DensityFactor()
		rows = append(rows, Fig3bRow{Era: era, D: d, TC: ch.Transistors, Predicted: m.TC.Eval(d)})
	}
	return rows, m.TC, nil
}

// Fig3cRow is one fitted curve of Figure 3c.
type Fig3cRow struct {
	Era        cmos.Era
	Curve      stats.PowerLaw
	N          int  // corpus chips behind the fit
	Projection bool // true for the 10-5 nm group, which the paper marks as a projection
}

// Fig3c reproduces the fitted curves of Figure 3c from a corpus, oldest era
// first.
func Fig3c(c *chipdb.Corpus) ([]Fig3cRow, error) {
	m, err := Fit(c)
	if err != nil {
		return nil, err
	}
	eras := cmos.Eras()
	rows := make([]Fig3cRow, 0, len(eras))
	for _, era := range eras {
		f, ok := m.ByEra[era]
		if !ok {
			continue
		}
		rows = append(rows, Fig3cRow{
			Era:        era,
			Curve:      f.Curve,
			N:          f.N,
			Projection: era == cmos.Era10to5,
		})
	}
	return rows, nil
}

// DarkFraction returns the fraction of a chip's area-limited transistors
// that its TDP envelope forces dark (inactive): the dark-silicon share of
// the design. Area-limited chips return 0.
//
// The paper motivates specialization with dark silicon ("power limitations
// restrict the fraction of active chip transistors to keep dissipation
// rates within a TDP envelope"); this quantifies it per configuration.
func (m *Model) DarkFraction(nodeNM, dieMM2, tdpW, freqGHz float64) (float64, error) {
	area, err := m.TransistorsFromArea(nodeNM, dieMM2)
	if err != nil {
		return 0, err
	}
	active, err := m.ActiveTransistors(nodeNM, tdpW, freqGHz)
	if err != nil {
		return 0, err
	}
	if active >= area {
		return 0, nil
	}
	return 1 - active/area, nil
}

// DarkSiliconRow is one cell of the dark-silicon table: the dark fraction
// of a (node, die) chip under a TDP envelope at 1 GHz.
type DarkSiliconRow struct {
	NodeNM float64
	DieMM2 float64
	TDPW   float64
	Dark   float64 // fraction in [0, 1)
}

// DarkSilicon evaluates the dark fraction over a node × die grid at the
// given TDP and 1 GHz — an extension table showing how the usable share of
// the transistor budget collapses toward the final nodes.
func (m *Model) DarkSilicon(nodes, dies []float64, tdpW float64) ([]DarkSiliconRow, error) {
	var rows []DarkSiliconRow
	for _, n := range nodes {
		for _, die := range dies {
			d, err := m.DarkFraction(n, die, tdpW, 1)
			if err != nil {
				return nil, err
			}
			rows = append(rows, DarkSiliconRow{NodeNM: n, DieMM2: die, TDPW: tdpW, Dark: d})
		}
	}
	return rows, nil
}
