package budget

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"accelwall/internal/chipdb"
	"accelwall/internal/cmos"
)

func corpus() *chipdb.Corpus { return chipdb.Synthetic(1) }

func TestFitRecoversPublishedShape(t *testing.T) {
	m, err := Fit(corpus())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.TC.B-chipdb.TCFitB) > 0.03 {
		t.Errorf("area model exponent = %g, want %g ± 0.03", m.TC.B, chipdb.TCFitB)
	}
	if len(m.ByEra) != 5 {
		t.Errorf("fitted %d era curves, want 5", len(m.ByEra))
	}
	// Exponents must decline toward newer eras (dark-silicon flattening).
	prev := math.Inf(1)
	for _, era := range cmos.Eras()[1:] { // 180-90 era shares the oldest curve by construction
		f, ok := m.ByEra[era]
		if !ok {
			t.Fatalf("missing era %v", era)
		}
		if f.Curve.B >= prev {
			t.Errorf("era %v exponent %g did not decline (prev %g)", era, f.Curve.B, prev)
		}
		prev = f.Curve.B
	}
}

func TestFitRejectsSmallCorpus(t *testing.T) {
	if _, err := Fit(nil); err == nil {
		t.Error("Fit(nil) should error")
	}
	if _, err := Fit(&chipdb.Corpus{}); err == nil {
		t.Error("Fit(empty) should error")
	}
}

func TestPublishedConstants(t *testing.T) {
	m := Published()
	if m.TC.A != chipdb.TCFitA || m.TC.B != chipdb.TCFitB {
		t.Errorf("published TC model = %v", m.TC)
	}
	// All five eras must resolve (180-90 falls back to the oldest curve).
	for _, era := range cmos.Eras() {
		if _, ok := m.ByEra[era]; !ok {
			t.Errorf("published model missing era %v", era)
		}
	}
}

func TestTransistorsFromArea(t *testing.T) {
	m := Published()
	// Paper: for large 5 nm chips (D >= 30) the count can reach 100 billion.
	tc, err := m.TransistorsFromArea(5, 800) // D = 800/25 = 32
	if err != nil {
		t.Fatal(err)
	}
	if tc < 80e9 || tc > 130e9 {
		t.Errorf("5nm 800mm² transistor count = %g, want ~100e9", tc)
	}
	// A 45 nm 263 mm² chip should be sub-billion-to-about-a-billion scale.
	tc, err = m.TransistorsFromArea(45, 263)
	if err != nil {
		t.Fatal(err)
	}
	if tc < 0.4e9 || tc > 2e9 {
		t.Errorf("45nm 263mm² transistor count = %g, want ~1e9", tc)
	}
	if _, err := m.TransistorsFromArea(0, 100); err == nil {
		t.Error("zero node should error")
	}
	if _, err := m.TransistorsFromArea(45, -1); err == nil {
		t.Error("negative area should error")
	}
}

func TestActiveTransistorsMonotonicInTDP(t *testing.T) {
	m := Published()
	prev := 0.0
	for _, tdp := range []float64{10, 50, 100, 300, 800} {
		tc, err := m.ActiveTransistors(7, tdp, 1)
		if err != nil {
			t.Fatal(err)
		}
		if tc <= prev {
			t.Errorf("active transistors not increasing in TDP: %g W -> %g", tdp, tc)
		}
		prev = tc
	}
}

func TestActiveTransistorsDecreasesWithFrequency(t *testing.T) {
	m := Published()
	lo, err := m.ActiveTransistors(7, 300, 2)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := m.ActiveTransistors(7, 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lo >= hi {
		t.Errorf("doubling frequency should halve active transistors: %g vs %g", lo, hi)
	}
	if math.Abs(lo*2-hi) > 1e-6*hi {
		t.Errorf("active transistors not inverse in frequency: %g vs %g", lo*2, hi)
	}
}

func TestActiveTransistorsRejectsBadInputs(t *testing.T) {
	m := Published()
	if _, err := m.ActiveTransistors(7, 0, 1); err == nil {
		t.Error("zero TDP should error")
	}
	if _, err := m.ActiveTransistors(7, 100, 0); err == nil {
		t.Error("zero frequency should error")
	}
	if _, err := m.ActiveTransistors(500, 100, 1); err == nil {
		t.Error("node out of range should error")
	}
}

func TestEraFallback(t *testing.T) {
	// A model missing the 10-5 era must fall back to the nearest fitted era.
	m, err := Fit(corpus().Filter(func(ch chipdb.Chip) bool { return ch.NodeNM > 10 }))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.ByEra[cmos.Era10to5]; ok {
		t.Fatal("filtered corpus should not contain the 10-5 era")
	}
	got, err := m.ActiveTransistors(7, 100, 1)
	if err != nil {
		t.Fatalf("fallback lookup failed: %v", err)
	}
	want := m.ByEra[cmos.Era16to12].Curve.Eval(100) * 1e9
	if math.Abs(got-want) > 1e-6*want {
		t.Errorf("fallback used wrong era: got %g, want %g (16-12nm curve)", got, want)
	}
}

func TestEraFallbackNoFits(t *testing.T) {
	m := &Model{ByEra: map[cmos.Era]EraFit{}}
	if _, err := m.ActiveTransistors(7, 100, 1); !errors.Is(err, ErrNoEraData) {
		t.Errorf("empty model err = %v, want ErrNoEraData", err)
	}
}

func TestBudgetTransistorsIsMin(t *testing.T) {
	m := Published()
	// Large 5 nm die at tiny TDP: power-capped.
	b, err := m.BudgetTransistors(5, 800, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	active, _ := m.ActiveTransistors(5, 10, 1)
	if b != active {
		t.Errorf("tiny-TDP budget = %g, want power-limited %g", b, active)
	}
	capped, err := m.PowerCapped(5, 800, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !capped {
		t.Error("800mm² 5nm chip at 10W should be power-capped")
	}
	// Tiny die at huge TDP: area-capped.
	b, err = m.BudgetTransistors(45, 25, 800, 1)
	if err != nil {
		t.Fatal(err)
	}
	area, _ := m.TransistorsFromArea(45, 25)
	if b != area {
		t.Errorf("huge-TDP budget = %g, want area-limited %g", b, area)
	}
	capped, err = m.PowerCapped(45, 25, 800, 1)
	if err != nil {
		t.Fatal(err)
	}
	if capped {
		t.Error("25mm² 45nm chip at 800W should be area-capped")
	}
}

func TestBudgetTransistorsPropagatesErrors(t *testing.T) {
	m := Published()
	if _, err := m.BudgetTransistors(0, 100, 100, 1); err == nil {
		t.Error("bad node should error")
	}
	if _, err := m.BudgetTransistors(45, 100, 0, 1); err == nil {
		t.Error("bad TDP should error")
	}
	if _, err := m.PowerCapped(0, 100, 100, 1); err == nil {
		t.Error("PowerCapped bad node should error")
	}
	if _, err := m.PowerCapped(45, 100, 0, 1); err == nil {
		t.Error("PowerCapped bad TDP should error")
	}
}

// Invariant: the budget never exceeds either limit, for any sane inputs.
func TestBudgetIsMinProperty(t *testing.T) {
	m := Published()
	f := func(rn, ra, rt, rf float64) bool {
		node := 5 + math.Mod(math.Abs(rn), 175)
		area := 1 + math.Mod(math.Abs(ra), 799)
		tdp := 1 + math.Mod(math.Abs(rt), 899)
		freq := 0.1 + math.Mod(math.Abs(rf), 4)
		if math.IsNaN(node) || math.IsNaN(area) || math.IsNaN(tdp) || math.IsNaN(freq) {
			return true
		}
		b, err := m.BudgetTransistors(node, area, tdp, freq)
		if err != nil {
			return false
		}
		areaTC, _ := m.TransistorsFromArea(node, area)
		activeTC, _ := m.ActiveTransistors(node, tdp, freq)
		return b <= areaTC && b <= activeTC && (b == areaTC || b == activeTC)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFig3bRows(t *testing.T) {
	c := corpus()
	rows, fit, err := Fig3b(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != c.Len() {
		t.Errorf("Fig3b rows = %d, want %d", len(rows), c.Len())
	}
	for i, r := range rows[:50] {
		want := fit.Eval(r.D)
		if math.Abs(r.Predicted-want) > 1e-9*want {
			t.Fatalf("row %d predicted %g, want %g", i, r.Predicted, want)
		}
	}
}

func TestFig3cRows(t *testing.T) {
	rows, err := Fig3c(corpus())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("Fig3c rows = %d, want 5", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Era <= rows[i-1].Era {
			t.Error("Fig3c rows not in chronological era order")
		}
	}
	for _, r := range rows {
		if r.Projection != (r.Era == cmos.Era10to5) {
			t.Errorf("era %v projection flag = %v", r.Era, r.Projection)
		}
		if r.N == 0 {
			t.Errorf("era %v has zero backing chips", r.Era)
		}
	}
}

func TestFig3ErrorsOnEmptyCorpus(t *testing.T) {
	if _, _, err := Fig3b(&chipdb.Corpus{}); err == nil {
		t.Error("Fig3b(empty) should error")
	}
	if _, err := Fig3c(&chipdb.Corpus{}); err == nil {
		t.Error("Fig3c(empty) should error")
	}
}

func TestDarkFraction(t *testing.T) {
	m := Published()
	// Small old chip with generous TDP: fully lit.
	d, err := m.DarkFraction(45, 25, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("45nm 25mm² at 200W dark fraction = %g, want 0", d)
	}
	// Huge 5nm chip under a tight envelope: mostly dark.
	d, err = m.DarkFraction(5, 800, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d < 0.8 || d >= 1 {
		t.Errorf("5nm 800mm² at 100W dark fraction = %g, want >= 0.8", d)
	}
	if _, err := m.DarkFraction(0, 1, 1, 1); err == nil {
		t.Error("bad node should error")
	}
	if _, err := m.DarkFraction(45, 100, 0, 1); err == nil {
		t.Error("bad TDP should error")
	}
}

func TestDarkFractionGrowsTowardNewNodes(t *testing.T) {
	m := Published()
	prev := -1.0
	for _, node := range []float64{45, 28, 16, 10, 7, 5} {
		d, err := m.DarkFraction(node, 400, 150, 1)
		if err != nil {
			t.Fatal(err)
		}
		if d < prev {
			t.Errorf("dark fraction shrank at %gnm: %g -> %g", node, prev, d)
		}
		prev = d
	}
	if prev < 0.5 {
		t.Errorf("final-node dark fraction = %g, want the majority of the die dark", prev)
	}
}

func TestDarkSiliconGrid(t *testing.T) {
	m := Published()
	rows, err := m.DarkSilicon([]float64{45, 5}, []float64{25, 800}, 150)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("grid rows = %d, want 4", len(rows))
	}
	for _, r := range rows {
		if r.Dark < 0 || r.Dark >= 1 {
			t.Errorf("dark fraction %g outside [0, 1)", r.Dark)
		}
	}
	if _, err := m.DarkSilicon([]float64{0}, []float64{25}, 150); err == nil {
		t.Error("bad node in grid should error")
	}
}
