package workloads

import (
	"fmt"

	"accelwall/internal/dfg"
)

// DomainKernel couples a Section IV case-study domain with a concrete
// kernel DFG for its core computation, letting the Section VI design-space
// machinery run over the very workloads the empirical study measures:
// SHA-256 double hashing for Bitcoin mining, an 8×8 inverse DCT for video
// decoding, and a transform-and-shade kernel for GPU graphics. (The CNN
// domain is already covered by the Table IV RBM kernel and the Winograd
// stencil variant.)
type DomainKernel struct {
	Domain string // case-study domain name
	Name   string
	Build  func(n int) (*dfg.Graph, error)
}

// DomainKernels returns the implemented case-study kernels.
func DomainKernels() []DomainKernel {
	return []DomainKernel{
		{Domain: "Bitcoin Mining", Name: "SHA256d", Build: BuildSHA256d},
		{Domain: "Video Decoding", Name: "IDCT8x8", Build: BuildIDCT8x8},
		{Domain: "Gaming/Graphics", Name: "Shader", Build: BuildShader},
	}
}

// DomainKernelByName resolves a domain kernel.
func DomainKernelByName(name string) (DomainKernel, error) {
	for _, k := range DomainKernels() {
		if k.Name == name {
			return k, nil
		}
	}
	return DomainKernel{}, fmt.Errorf("workloads: unknown domain kernel %q", name)
}

// sigma models a SHA-256 σ/Σ function: three rotations (shifts) combined
// by two xors.
func sigma(g *dfg.Graph, x dfg.NodeID) dfg.NodeID {
	r1 := g.MustOp(dfg.OpShift, x)
	r2 := g.MustOp(dfg.OpShift, x)
	r3 := g.MustOp(dfg.OpShift, x)
	x1 := g.MustOp(dfg.OpLogic, r1, r2)
	return g.MustOp(dfg.OpLogic, x1, r3)
}

// choose models Ch(e,f,g) = (e AND f) XOR (NOT e AND g).
func choose(g *dfg.Graph, e, f, gg dfg.NodeID) dfg.NodeID {
	a := g.MustOp(dfg.OpLogic, e, f)
	b := g.MustOp(dfg.OpLogic, e, gg)
	return g.MustOp(dfg.OpLogic, a, b)
}

// majority models Maj(a,b,c).
func majority(g *dfg.Graph, a, b, c dfg.NodeID) dfg.NodeID {
	ab := g.MustOp(dfg.OpLogic, a, b)
	ac := g.MustOp(dfg.OpLogic, a, c)
	bc := g.MustOp(dfg.OpLogic, b, c)
	return g.MustOp(dfg.OpLogic, g.MustOp(dfg.OpLogic, ab, ac), bc)
}

// sha256Rounds runs the message schedule plus `rounds` compression rounds
// over an 8-word state, returning the new state. w holds the 16 message
// words; k is the round-constant input.
func sha256Rounds(g *dfg.Graph, state [8]dfg.NodeID, w []dfg.NodeID, k dfg.NodeID, rounds int) [8]dfg.NodeID {
	// Message schedule expansion: W[t] = σ1(W[t-2]) + W[t-7] + σ0(W[t-15]) + W[t-16].
	sched := make([]dfg.NodeID, rounds)
	copy(sched, w)
	for t := 16; t < rounds; t++ {
		s1 := sigma(g, sched[t-2])
		s0 := sigma(g, sched[t-15])
		a1 := g.MustOp(dfg.OpAdd, s1, sched[t-7])
		a2 := g.MustOp(dfg.OpAdd, s0, sched[t-16])
		sched[t] = g.MustOp(dfg.OpAdd, a1, a2)
	}
	a, b, c, d, e, f, gg, h := state[0], state[1], state[2], state[3], state[4], state[5], state[6], state[7]
	for t := 0; t < rounds; t++ {
		t1 := g.MustOp(dfg.OpAdd, h, sigma(g, e))
		t1 = g.MustOp(dfg.OpAdd, t1, choose(g, e, f, gg))
		t1 = g.MustOp(dfg.OpAdd, t1, g.MustOp(dfg.OpAdd, k, sched[t]))
		t2 := g.MustOp(dfg.OpAdd, sigma(g, a), majority(g, a, b, c))
		h, gg, f = gg, f, e
		e = g.MustOp(dfg.OpAdd, d, t1)
		d, c, b = c, b, a
		a = g.MustOp(dfg.OpAdd, t1, t2)
	}
	// Feed-forward addition of the incoming state.
	return [8]dfg.NodeID{
		g.MustOp(dfg.OpAdd, a, state[0]),
		g.MustOp(dfg.OpAdd, b, state[1]),
		g.MustOp(dfg.OpAdd, c, state[2]),
		g.MustOp(dfg.OpAdd, d, state[3]),
		g.MustOp(dfg.OpAdd, e, state[4]),
		g.MustOp(dfg.OpAdd, f, state[5]),
		g.MustOp(dfg.OpAdd, gg, state[6]),
		g.MustOp(dfg.OpAdd, h, state[7]),
	}
}

// BuildSHA256d models n independent Bitcoin hashing attempts: each is a
// double SHA-256 over an 16-word header block (the inner loop of every
// miner in Figure 1/9). n controls nonce-level parallelism — the only
// parallelism the confined domain offers, which is why "most miners
// operate in a brute-force and parallelized manner". Default n = 2; 24
// rounds per pass keep default graphs tractable while preserving the
// round-chain structure (a real miner unrolls all 64).
func BuildSHA256d(n int) (*dfg.Graph, error) {
	n = defaultSize(n, 2)
	const rounds = 24
	g := dfg.New("SHA256d")
	k := g.AddInput("K")
	var iv [8]dfg.NodeID
	for i := range iv {
		iv[i] = g.AddInput(fmt.Sprintf("iv%d", i))
	}
	for attempt := 0; attempt < n; attempt++ {
		w := make([]dfg.NodeID, 16)
		for i := range w {
			w[i] = g.AddInput(fmt.Sprintf("hdr%d_%d", attempt, i))
		}
		// First pass over the header.
		mid := sha256Rounds(g, iv, w, k, rounds)
		// Second pass hashes the first digest (padded block: digest words
		// feed the schedule, remaining words are constants folded into K).
		w2 := make([]dfg.NodeID, 16)
		for i := 0; i < 8; i++ {
			w2[i] = mid[i]
		}
		for i := 8; i < 16; i++ {
			w2[i] = k
		}
		final := sha256Rounds(g, iv, w2, k, rounds)
		// Miners compare the top digest word against the difficulty target.
		target := g.AddInput(fmt.Sprintf("target%d", attempt))
		g.MustOutput(fmt.Sprintf("hit%d", attempt), g.MustOp(dfg.OpCmp, final[0], target))
		// Remaining digest words are returned for verification.
		for i := 1; i < 8; i++ {
			g.MustOutput(fmt.Sprintf("d%d_%d", attempt, i), final[i])
		}
	}
	return finish(g)
}

// idct1D applies a butterfly-structured 8-point inverse DCT to a row or
// column of value nodes: a realistic even/odd decomposition with 10
// multiplies and a recombination network, the shape of every hardware
// IDCT since Loeffler.
func idct1D(g *dfg.Graph, in [8]dfg.NodeID, coeff dfg.NodeID) [8]dfg.NodeID {
	// Even part: butterfly over coefficients 0,4,2,6.
	e0 := g.MustOp(dfg.OpAdd, in[0], in[4])
	e1 := g.MustOp(dfg.OpSub, in[0], in[4])
	e2 := g.MustOp(dfg.OpSub, g.MustOp(dfg.OpMul, in[2], coeff), in[6])
	e3 := g.MustOp(dfg.OpAdd, in[2], g.MustOp(dfg.OpMul, in[6], coeff))
	t0 := g.MustOp(dfg.OpAdd, e0, e3)
	t3 := g.MustOp(dfg.OpSub, e0, e3)
	t1 := g.MustOp(dfg.OpAdd, e1, e2)
	t2 := g.MustOp(dfg.OpSub, e1, e2)
	// Odd part: coefficients 1,3,5,7 each scaled, then recombined.
	o0 := g.MustOp(dfg.OpMul, in[1], coeff)
	o1 := g.MustOp(dfg.OpMul, in[3], coeff)
	o2 := g.MustOp(dfg.OpMul, in[5], coeff)
	o3 := g.MustOp(dfg.OpMul, in[7], coeff)
	s0 := g.MustOp(dfg.OpAdd, o0, o1)
	s1 := g.MustOp(dfg.OpSub, o2, o3)
	u0 := g.MustOp(dfg.OpMul, g.MustOp(dfg.OpAdd, s0, s1), coeff)
	u1 := g.MustOp(dfg.OpMul, g.MustOp(dfg.OpSub, s0, s1), coeff)
	u2 := g.MustOp(dfg.OpMul, g.MustOp(dfg.OpAdd, o0, o3), coeff)
	u3 := g.MustOp(dfg.OpMul, g.MustOp(dfg.OpSub, o1, o2), coeff)
	return [8]dfg.NodeID{
		g.MustOp(dfg.OpAdd, t0, u0),
		g.MustOp(dfg.OpAdd, t1, u1),
		g.MustOp(dfg.OpAdd, t2, u2),
		g.MustOp(dfg.OpAdd, t3, u3),
		g.MustOp(dfg.OpSub, t3, u3),
		g.MustOp(dfg.OpSub, t2, u2),
		g.MustOp(dfg.OpSub, t1, u1),
		g.MustOp(dfg.OpSub, t0, u0),
	}
}

// BuildIDCT8x8 models the inverse-transform stage of a video decoder: n
// 8×8 blocks, each running a row-column separable IDCT followed by
// prediction add and clamping (the Figure 4 ASICs' residual-reconstruction
// datapath). Default n = 4 blocks.
func BuildIDCT8x8(n int) (*dfg.Graph, error) {
	n = defaultSize(n, 4)
	g := dfg.New("IDCT8x8")
	coeff := g.AddInput("c")
	for b := 0; b < n; b++ {
		var block [8][8]dfg.NodeID
		for i := 0; i < 8; i++ {
			for j := 0; j < 8; j++ {
				block[i][j] = g.AddInput(fmt.Sprintf("q%d_%d_%d", b, i, j))
			}
		}
		// Row pass.
		for i := 0; i < 8; i++ {
			block[i] = idct1D(g, block[i], coeff)
		}
		// Column pass.
		for j := 0; j < 8; j++ {
			var col [8]dfg.NodeID
			for i := 0; i < 8; i++ {
				col[i] = block[i][j]
			}
			col = idct1D(g, col, coeff)
			for i := 0; i < 8; i++ {
				block[i][j] = col[i]
			}
		}
		// Residual + prediction, clamped to pixel range.
		pred := g.AddInput(fmt.Sprintf("pred%d", b))
		for i := 0; i < 8; i++ {
			for j := 0; j < 8; j++ {
				px := g.MustOp(dfg.OpAdd, block[i][j], pred)
				g.MustOutput(fmt.Sprintf("p%d_%d_%d", b, i, j), g.MustOp(dfg.OpCmp, px, pred))
			}
		}
	}
	return finish(g)
}

// BuildShader models the per-vertex/per-fragment work of a forward
// renderer: n vertices through a 4×4 model-view-projection transform with
// perspective divide, then n fragments of interpolation, a texture fetch,
// and Blinn-Phong style lighting (dot products plus a specular
// nonlinearity) — the GPU graphics workload of Figures 5–7. Default n = 16.
func BuildShader(n int) (*dfg.Graph, error) {
	n = defaultSize(n, 16)
	g := dfg.New("Shader")
	var mvp [16]dfg.NodeID
	for i := range mvp {
		mvp[i] = g.AddInput(fmt.Sprintf("m%d", i))
	}
	light := [3]dfg.NodeID{g.AddInput("lx"), g.AddInput("ly"), g.AddInput("lz")}
	for v := 0; v < n; v++ {
		// Vertex transform: 4 dot products of length 4.
		var pos [4]dfg.NodeID
		for d := 0; d < 4; d++ {
			pos[d] = g.AddInput(fmt.Sprintf("v%d_%d", v, d))
		}
		var clip [4]dfg.NodeID
		for row := 0; row < 4; row++ {
			terms := make([]dfg.NodeID, 4)
			for col := 0; col < 4; col++ {
				terms[col] = g.MustOp(dfg.OpMul, mvp[row*4+col], pos[col])
			}
			clip[row] = reduceTree(g, dfg.OpAdd, terms)
		}
		// Perspective divide.
		sx := g.MustOp(dfg.OpDiv, clip[0], clip[3])
		sy := g.MustOp(dfg.OpDiv, clip[1], clip[3])
		sz := g.MustOp(dfg.OpDiv, clip[2], clip[3])
		// Fragment: interpolated normal, texture fetch, diffuse + specular.
		var normal [3]dfg.NodeID
		for d := 0; d < 3; d++ {
			nd := g.AddInput(fmt.Sprintf("n%d_%d", v, d))
			normal[d] = g.MustOp(dfg.OpMul, nd, sz) // perspective-correct interpolation
		}
		texel := g.MustOp(dfg.OpLoad, sx, sy)
		diffTerms := make([]dfg.NodeID, 3)
		for d := 0; d < 3; d++ {
			diffTerms[d] = g.MustOp(dfg.OpMul, normal[d], light[d])
		}
		diffuse := reduceTree(g, dfg.OpAdd, diffTerms)
		spec := g.MustOp(dfg.OpNonlinear, diffuse) // specular power function
		lit := g.MustOp(dfg.OpAdd, g.MustOp(dfg.OpMul, texel, diffuse), spec)
		g.MustOutput(fmt.Sprintf("frag%d", v), g.MustOp(dfg.OpStore, lit))
	}
	return finish(g)
}
