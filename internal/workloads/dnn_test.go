package workloads

import "testing"

// Structural signatures of the deep-learning kernels, mirroring
// TestKernelSignatures: each builder must produce its algorithm's
// characteristic shape.
func TestDNNSignatures(t *testing.T) {
	build := func(abbrev string, n int) map[string]int {
		spec, err := ByAbbrev(abbrev)
		if err != nil {
			t.Fatal(err)
		}
		g, err := spec.Build(n)
		if err != nil {
			t.Fatal(err)
		}
		s := g.ComputeStats()
		return map[string]int{"vcmp": s.VCmp, "vout": s.VOut, "depth": s.Depth}
	}

	// CNV n=6: one output per interior pixel, each through a ReLU; depth is
	// independent of the feature-map side (taps -> tree -> bias -> ReLU).
	cnv := build("CNV", 6)
	if cnv["vout"] != 36 {
		t.Errorf("CNV outputs = %d, want 36 (6x6 interior)", cnv["vout"])
	}
	if d3, d8 := build("CNV", 3)["depth"], build("CNV", 8)["depth"]; d3 != d8 {
		t.Errorf("CNV depth varies with feature-map size: %d vs %d", d3, d8)
	}

	// ATT n=6, 4 dims: one output per (query, dimension). The softmax
	// normalizer makes each row deeper than a pure conv pipeline.
	att := build("ATT", 6)
	if att["vout"] != 24 {
		t.Errorf("ATT outputs = %d, want 24 (6 queries x 4 dims)", att["vout"])
	}
	if att["depth"] <= cnv["depth"] {
		t.Errorf("ATT depth (%d) should exceed CNV's (%d): softmax serializes each row", att["depth"], cnv["depth"])
	}

	// Attention cost grows quadratically in sequence length (n x n score
	// matrix); doubling n must much more than double the compute nodes.
	if c3, c6 := build("ATT", 3)["vcmp"], build("ATT", 6)["vcmp"]; c6 < 3*c3 {
		t.Errorf("ATT compute did not grow quadratically: n=3 -> %d, n=6 -> %d", c3, c6)
	}
}
