package workloads

import (
	"fmt"

	"accelwall/internal/dfg"
)

// BuildConv2D models one 3×3 convolution layer over an n×n interior with
// two input channels — the DNN-accelerator workhorse. Per output pixel,
// each channel contributes nine weight multiplies; the 18 products fold
// through a balanced add tree, take a bias add, and pass a ReLU
// (nonlinear). Weights are shared across pixels (as in a real layer), so
// the kernel is wide, shallow, and multiply-dominated. Default n = 6.
func BuildConv2D(n int) (*dfg.Graph, error) {
	n = defaultSize(n, 6)
	const channels = 2
	const k = 3 // kernel side
	g := dfg.New("CNV")
	// One shared weight input per (channel, tap) and one bias.
	weights := make([][k * k]dfg.NodeID, channels)
	for c := 0; c < channels; c++ {
		for t := 0; t < k*k; t++ {
			weights[c][t] = g.AddInput(fmt.Sprintf("w%d_%d", c, t))
		}
	}
	bias := g.AddInput("bias")
	// The padded input feature map, per channel.
	grid := make([][][]dfg.NodeID, channels)
	for c := 0; c < channels; c++ {
		grid[c] = make([][]dfg.NodeID, n+2)
		for i := range grid[c] {
			grid[c][i] = make([]dfg.NodeID, n+2)
			for j := range grid[c][i] {
				grid[c][i][j] = g.AddInput(fmt.Sprintf("x%d_%d_%d", c, i, j))
			}
		}
	}
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			var taps []dfg.NodeID
			for c := 0; c < channels; c++ {
				for di := -1; di <= 1; di++ {
					for dj := -1; dj <= 1; dj++ {
						t := (di+1)*k + (dj + 1)
						taps = append(taps, g.MustOp(dfg.OpMul, grid[c][i+di][j+dj], weights[c][t]))
					}
				}
			}
			pre := g.MustOp(dfg.OpAdd, reduceTree(g, dfg.OpAdd, taps), bias)
			g.MustOutput(fmt.Sprintf("y%d_%d", i, j), g.MustOp(dfg.OpNonlinear, pre))
		}
	}
	return finish(g)
}

// BuildAttention models single-head scaled dot-product attention over a
// length-n sequence with 4-dimensional heads: per query, dot products
// against every key (multiplies + add tree), a scale multiply, a softmax
// (per-score exponential via nonlinear, an add-tree normalizer, and a
// divide per weight), then the value-weighted sum per dimension. Queries
// parallelize; the softmax normalizer serializes each row — the
// mixed-shape kernel that makes attention accelerators interesting.
// Default n = 6.
func BuildAttention(n int) (*dfg.Graph, error) {
	n = defaultSize(n, 6)
	const dims = 4
	g := dfg.New("ATT")
	q := make([][dims]dfg.NodeID, n)
	kk := make([][dims]dfg.NodeID, n)
	v := make([][dims]dfg.NodeID, n)
	for i := 0; i < n; i++ {
		for d := 0; d < dims; d++ {
			q[i][d] = g.AddInput(fmt.Sprintf("q%d_%d", i, d))
			kk[i][d] = g.AddInput(fmt.Sprintf("k%d_%d", i, d))
			v[i][d] = g.AddInput(fmt.Sprintf("v%d_%d", i, d))
		}
	}
	scale := g.AddInput("scale") // 1/sqrt(dims)
	for i := 0; i < n; i++ {
		// Scores: q_i · k_j, scaled.
		exps := make([]dfg.NodeID, n)
		for j := 0; j < n; j++ {
			prods := make([]dfg.NodeID, dims)
			for d := 0; d < dims; d++ {
				prods[d] = g.MustOp(dfg.OpMul, q[i][d], kk[j][d])
			}
			score := g.MustOp(dfg.OpMul, reduceTree(g, dfg.OpAdd, prods), scale)
			exps[j] = g.MustOp(dfg.OpNonlinear, score) // exp
		}
		// Softmax normalization.
		norm := reduceTree(g, dfg.OpAdd, exps)
		weights := make([]dfg.NodeID, n)
		for j := 0; j < n; j++ {
			weights[j] = g.MustOp(dfg.OpDiv, exps[j], norm)
		}
		// Value-weighted sum per head dimension.
		for d := 0; d < dims; d++ {
			terms := make([]dfg.NodeID, n)
			for j := 0; j < n; j++ {
				terms[j] = g.MustOp(dfg.OpMul, weights[j], v[j][d])
			}
			g.MustOutput(fmt.Sprintf("o%d_%d", i, d), reduceTree(g, dfg.OpAdd, terms))
		}
	}
	return finish(g)
}
