package workloads

import (
	"fmt"
	"math/bits"

	"accelwall/internal/dfg"
)

// Variant is an alternative algorithm for one of the Table IV domains —
// the "Algorithm" layer of the specialization stack (Figure 2). The paper
// attributes CSR improvements in emerging domains to exactly such changes:
// "In FPGA2017* the authors applied the Winograd transform to exploit the
// locality in small 3×3 filters ... and improve throughput by minimizing
// the complexity of Convolutional operations." Each variant computes the
// same function as its base kernel with a different operation mix, so any
// gain it shows at a fixed design point is pure algorithmic CSR.
type Variant struct {
	Base   string // abbreviation of the Table IV kernel it replaces
	Name   string // algorithm name
	Effect string // one-line description of what it trades
	Build  func(n int) (*dfg.Graph, error)
}

// Variants returns the implemented algorithm alternatives.
func Variants() []Variant {
	return []Variant{
		{
			Base:   "GMM",
			Name:   "strassen",
			Effect: "7 recursive multiplies per 2x2 block instead of 8, at the cost of extra additions",
			Build:  BuildGMMStrassen,
		},
		{
			Base:   "S2D",
			Name:   "winograd",
			Effect: "F(2x2,3x3) tiles: 16 multiplies per 4 outputs instead of 36",
			Build:  BuildS2DWinograd,
		},
		{
			Base:   "FFT",
			Name:   "radix4",
			Effect: "half the stages with 3 twiddle multiplies per 4 points instead of 4",
			Build:  BuildFFTRadix4,
		},
	}
}

// VariantByName resolves a variant as "BASE/name", e.g. "GMM/strassen".
func VariantByName(key string) (Variant, error) {
	for _, v := range Variants() {
		if v.Base+"/"+v.Name == key {
			return v, nil
		}
	}
	return Variant{}, fmt.Errorf("workloads: unknown variant %q", key)
}

// matrix is a square grid of value nodes used by the Strassen builder.
type matrix struct {
	n     int
	cells []dfg.NodeID
}

func newMatrix(n int) matrix { return matrix{n: n, cells: make([]dfg.NodeID, n*n)} }

func (m matrix) at(i, j int) dfg.NodeID     { return m.cells[i*m.n+j] }
func (m matrix) set(i, j int, v dfg.NodeID) { m.cells[i*m.n+j] = v }
func (m matrix) quadrant(qi, qj int) matrix {
	h := m.n / 2
	out := newMatrix(h)
	for i := 0; i < h; i++ {
		for j := 0; j < h; j++ {
			out.set(i, j, m.at(qi*h+i, qj*h+j))
		}
	}
	return out
}

// elementwise applies op cell-by-cell to two equal-size matrices.
func elementwise(g *dfg.Graph, op dfg.Op, a, b matrix) matrix {
	out := newMatrix(a.n)
	for i := range a.cells {
		out.cells[i] = g.MustOp(op, a.cells[i], b.cells[i])
	}
	return out
}

// strassenMul multiplies two n×n matrices of value nodes with Strassen's
// algorithm, recursing to scalar multiplies. n must be a power of two.
func strassenMul(g *dfg.Graph, a, b matrix) matrix {
	if a.n == 1 {
		out := newMatrix(1)
		out.cells[0] = g.MustOp(dfg.OpMul, a.cells[0], b.cells[0])
		return out
	}
	a11, a12 := a.quadrant(0, 0), a.quadrant(0, 1)
	a21, a22 := a.quadrant(1, 0), a.quadrant(1, 1)
	b11, b12 := b.quadrant(0, 0), b.quadrant(0, 1)
	b21, b22 := b.quadrant(1, 0), b.quadrant(1, 1)

	m1 := strassenMul(g, elementwise(g, dfg.OpAdd, a11, a22), elementwise(g, dfg.OpAdd, b11, b22))
	m2 := strassenMul(g, elementwise(g, dfg.OpAdd, a21, a22), b11)
	m3 := strassenMul(g, a11, elementwise(g, dfg.OpSub, b12, b22))
	m4 := strassenMul(g, a22, elementwise(g, dfg.OpSub, b21, b11))
	m5 := strassenMul(g, elementwise(g, dfg.OpAdd, a11, a12), b22)
	m6 := strassenMul(g, elementwise(g, dfg.OpSub, a21, a11), elementwise(g, dfg.OpAdd, b11, b12))
	m7 := strassenMul(g, elementwise(g, dfg.OpSub, a12, a22), elementwise(g, dfg.OpAdd, b21, b22))

	c11 := elementwise(g, dfg.OpAdd, elementwise(g, dfg.OpSub, elementwise(g, dfg.OpAdd, m1, m4), m5), m7)
	c12 := elementwise(g, dfg.OpAdd, m3, m5)
	c21 := elementwise(g, dfg.OpAdd, m2, m4)
	c22 := elementwise(g, dfg.OpAdd, elementwise(g, dfg.OpAdd, elementwise(g, dfg.OpSub, m1, m2), m3), m6)

	out := newMatrix(a.n)
	h := a.n / 2
	for i := 0; i < h; i++ {
		for j := 0; j < h; j++ {
			out.set(i, j, c11.at(i, j))
			out.set(i, j+h, c12.at(i, j))
			out.set(i+h, j, c21.at(i, j))
			out.set(i+h, j+h, c22.at(i, j))
		}
	}
	return out
}

// BuildGMMStrassen builds n×n matrix multiplication via Strassen's
// algorithm: n^log2(7) ≈ n^2.81 multiplies instead of n³, at the price of
// extra additions and a deeper recombination network. n is rounded up to a
// power of two; default 8.
func BuildGMMStrassen(n int) (*dfg.Graph, error) {
	n = defaultSize(n, 8)
	if n < 2 {
		n = 2
	}
	if n&(n-1) != 0 {
		n = 1 << bits.Len(uint(n))
	}
	g := dfg.New("GMM/strassen")
	a := newMatrix(n)
	b := newMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.set(i, j, g.AddInput(fmt.Sprintf("a%d_%d", i, j)))
			b.set(i, j, g.AddInput(fmt.Sprintf("b%d_%d", i, j)))
		}
	}
	c := strassenMul(g, a, b)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			g.MustOutput(fmt.Sprintf("c%d_%d", i, j), c.at(i, j))
		}
	}
	return finish(g)
}

// BuildS2DWinograd builds the 2D stencil as a Winograd F(2×2, 3×3)
// convolution: the n×n interior (n rounded up to even) is covered by 2×2
// output tiles, each computed from a 4×4 input tile with 16 elementwise
// multiplies — against 36 for the direct form — plus input/output
// transform additions. Default n = 8.
func BuildS2DWinograd(n int) (*dfg.Graph, error) {
	n = defaultSize(n, 8)
	if n%2 == 1 {
		n++
	}
	g := dfg.New("S2D/winograd")
	grid := make([][]dfg.NodeID, n+2)
	for i := range grid {
		grid[i] = make([]dfg.NodeID, n+2)
		for j := range grid[i] {
			grid[i][j] = g.AddInput(fmt.Sprintf("g%d_%d", i, j))
		}
	}
	// Transformed filter: 16 values, supplied as inputs (the filter
	// transform G·g·Gᵀ is computed once offline, as Winograd deployments
	// do).
	filter := make([]dfg.NodeID, 16)
	for i := range filter {
		filter[i] = g.AddInput(fmt.Sprintf("u%d", i))
	}
	for ti := 0; ti < n; ti += 2 {
		for tj := 0; tj < n; tj += 2 {
			// 4x4 input tile d.
			var d [4][4]dfg.NodeID
			for i := 0; i < 4; i++ {
				for j := 0; j < 4; j++ {
					d[i][j] = grid[ti+i][tj+j]
				}
			}
			// Input transform V = Bᵀ·d·B with
			// Bᵀ = [1 0 -1 0; 0 1 1 0; 0 -1 1 0; 0 1 0 -1]: rows first.
			var rows [4][4]dfg.NodeID
			for j := 0; j < 4; j++ {
				rows[0][j] = g.MustOp(dfg.OpSub, d[0][j], d[2][j])
				rows[1][j] = g.MustOp(dfg.OpAdd, d[1][j], d[2][j])
				rows[2][j] = g.MustOp(dfg.OpSub, d[2][j], d[1][j])
				rows[3][j] = g.MustOp(dfg.OpSub, d[1][j], d[3][j])
			}
			var v [4][4]dfg.NodeID
			for i := 0; i < 4; i++ {
				v[i][0] = g.MustOp(dfg.OpSub, rows[i][0], rows[i][2])
				v[i][1] = g.MustOp(dfg.OpAdd, rows[i][1], rows[i][2])
				v[i][2] = g.MustOp(dfg.OpSub, rows[i][2], rows[i][1])
				v[i][3] = g.MustOp(dfg.OpSub, rows[i][1], rows[i][3])
			}
			// Elementwise product M = U ⊙ V: the 16 multiplies.
			var m [4][4]dfg.NodeID
			for i := 0; i < 4; i++ {
				for j := 0; j < 4; j++ {
					m[i][j] = g.MustOp(dfg.OpMul, v[i][j], filter[i*4+j])
				}
			}
			// Output transform Y = Aᵀ·M·A with Aᵀ = [1 1 1 0; 0 1 -1 -1].
			var half [2][4]dfg.NodeID
			for j := 0; j < 4; j++ {
				s01 := g.MustOp(dfg.OpAdd, m[0][j], m[1][j])
				half[0][j] = g.MustOp(dfg.OpAdd, s01, m[2][j])
				s12 := g.MustOp(dfg.OpSub, m[1][j], m[2][j])
				half[1][j] = g.MustOp(dfg.OpSub, s12, m[3][j])
			}
			for i := 0; i < 2; i++ {
				s01 := g.MustOp(dfg.OpAdd, half[i][0], half[i][1])
				y0 := g.MustOp(dfg.OpAdd, s01, half[i][2])
				s12 := g.MustOp(dfg.OpSub, half[i][1], half[i][2])
				y1 := g.MustOp(dfg.OpSub, s12, half[i][3])
				g.MustOutput(fmt.Sprintf("o%d_%d", ti+i, tj), y0)
				g.MustOutput(fmt.Sprintf("o%d_%d", ti+i, tj+1), y1)
			}
		}
	}
	return finish(g)
}

// BuildFFTRadix4 builds an n-point radix-4 decimation-in-time FFT:
// log4(n) stages of n/4 dragonflies, each combining four points with three
// twiddle multiplies and eight add/sub operations — 25% fewer multiplies
// than radix-2. n is rounded up to a power of four; default 64.
func BuildFFTRadix4(n int) (*dfg.Graph, error) {
	n = defaultSize(n, 64)
	if n < 4 {
		n = 4
	}
	// Round up to a power of 4.
	for n&(n-1) != 0 || bits.TrailingZeros(uint(n))%2 != 0 {
		n++
		n = 1 << bits.Len(uint(n-1))
	}
	g := dfg.New("FFT/radix4")
	vals := make([]dfg.NodeID, n)
	for i := range vals {
		vals[i] = g.AddInput(fmt.Sprintf("x%d", i))
	}
	tw := g.AddInput("twiddles")
	stages := bits.TrailingZeros(uint(n)) / 2
	for s := 0; s < stages; s++ {
		quarter := 1 << (2 * s)
		next := make([]dfg.NodeID, n)
		for base := 0; base < n; base += quarter * 4 {
			for k := 0; k < quarter; k++ {
				p0 := vals[base+k]
				// Three twiddle multiplies (the DC leg needs none).
				p1 := g.MustOp(dfg.OpMul, vals[base+k+quarter], tw)
				p2 := g.MustOp(dfg.OpMul, vals[base+k+2*quarter], tw)
				p3 := g.MustOp(dfg.OpMul, vals[base+k+3*quarter], tw)
				// Dragonfly recombination: eight add/sub operations.
				s02 := g.MustOp(dfg.OpAdd, p0, p2)
				d02 := g.MustOp(dfg.OpSub, p0, p2)
				s13 := g.MustOp(dfg.OpAdd, p1, p3)
				d13 := g.MustOp(dfg.OpSub, p1, p3)
				next[base+k] = g.MustOp(dfg.OpAdd, s02, s13)
				next[base+k+quarter] = g.MustOp(dfg.OpAdd, d02, d13)
				next[base+k+2*quarter] = g.MustOp(dfg.OpSub, s02, s13)
				next[base+k+3*quarter] = g.MustOp(dfg.OpSub, d02, d13)
			}
		}
		vals = next
	}
	for i, v := range vals {
		g.MustOutput(fmt.Sprintf("X%d", i), v)
	}
	return finish(g)
}
