package workloads

import (
	"testing"

	"accelwall/internal/dfg"
)

func TestAllSixteenApplications(t *testing.T) {
	specs := TableIV()
	if len(specs) != 16 {
		t.Fatalf("Table IV lists 16 applications, got %d", len(specs))
	}
	want := []string{"AES", "BFS", "FFT", "GMM", "MDY", "KNN", "NWN", "RBM",
		"RED", "SAD", "SRT", "SMV", "SSP", "S2D", "S3D", "TRD"}
	for i, s := range specs {
		if s.Abbrev != want[i] {
			t.Errorf("spec %d = %q, want %q", i, s.Abbrev, want[i])
		}
		if s.Name == "" || s.Domain == "" || s.Build == nil {
			t.Errorf("spec %q incomplete: %+v", s.Abbrev, s)
		}
	}
}

// All() is the serving registry: the Table IV sixteen, in order, followed
// by the deep-learning additions.
func TestAllExtendsTableIV(t *testing.T) {
	specs := All()
	if len(specs) != 18 {
		t.Fatalf("All() lists %d applications, want 18 (Table IV + CNV + ATT)", len(specs))
	}
	for i, s := range TableIV() {
		if specs[i].Abbrev != s.Abbrev {
			t.Errorf("All()[%d] = %q, want the Table IV order (%q)", i, specs[i].Abbrev, s.Abbrev)
		}
	}
	if specs[16].Abbrev != "CNV" || specs[17].Abbrev != "ATT" {
		t.Errorf("deep-learning tail = %q, %q; want CNV, ATT", specs[16].Abbrev, specs[17].Abbrev)
	}
	for _, abbrev := range []string{"CNV", "ATT"} {
		if _, err := ByAbbrev(abbrev); err != nil {
			t.Errorf("ByAbbrev(%q): %v", abbrev, err)
		}
	}
}

func TestByAbbrev(t *testing.T) {
	s, err := ByAbbrev("FFT")
	if err != nil {
		t.Fatal(err)
	}
	if s.Domain != "Signal Processing" {
		t.Errorf("FFT domain = %q", s.Domain)
	}
	if _, err := ByAbbrev("NOPE"); err == nil {
		t.Error("unknown abbrev should error")
	}
}

// Every kernel's default build must validate and have the structural
// profile of a real computation: inputs, outputs, computation nodes, and a
// depth of at least three (input -> compute -> output).
func TestDefaultBuildsValidate(t *testing.T) {
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Abbrev, func(t *testing.T) {
			g, err := spec.Build(0)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			if err := g.Validate(); err != nil {
				t.Fatalf("validate: %v", err)
			}
			s := g.ComputeStats()
			if s.VIn == 0 || s.VOut == 0 || s.VCmp == 0 {
				t.Errorf("degenerate structure: %+v", s)
			}
			if s.Depth < 3 {
				t.Errorf("depth = %d, want >= 3", s.Depth)
			}
			if s.Paths < 1 {
				t.Errorf("paths = %g, want >= 1", s.Paths)
			}
		})
	}
}

// Builds must scale: a larger problem size yields at least as many
// computation nodes (strictly more for every kernel here).
func TestBuildsScaleWithSize(t *testing.T) {
	sizes := map[string][2]int{
		"AES": {2, 4}, "BFS": {16, 64}, "FFT": {16, 64}, "GMM": {4, 8},
		"MDY": {10, 20}, "KNN": {16, 64}, "NWN": {6, 12}, "RBM": {8, 16},
		"RED": {64, 256}, "SAD": {8, 16}, "SRT": {16, 32}, "SMV": {16, 32},
		"SSP": {16, 32}, "S2D": {4, 8}, "S3D": {3, 5}, "TRD": {32, 128},
		"CNV": {3, 6}, "ATT": {3, 6},
	}
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Abbrev, func(t *testing.T) {
			sz := sizes[spec.Abbrev]
			small, err := spec.Build(sz[0])
			if err != nil {
				t.Fatal(err)
			}
			large, err := spec.Build(sz[1])
			if err != nil {
				t.Fatal(err)
			}
			sc, lc := small.ComputeStats().VCmp, large.ComputeStats().VCmp
			if lc <= sc {
				t.Errorf("size %d -> %d compute nodes, size %d -> %d; expected growth",
					sz[0], sc, sz[1], lc)
			}
		})
	}
}

// Structural signatures distinguishing the kernels: these pin down that
// each builder produces its algorithm's characteristic shape, not a generic
// graph.
func TestKernelSignatures(t *testing.T) {
	stats := func(abbrev string, n int) dfg.Stats {
		spec, err := ByAbbrev(abbrev)
		if err != nil {
			t.Fatal(err)
		}
		g, err := spec.Build(n)
		if err != nil {
			t.Fatal(err)
		}
		return g.ComputeStats()
	}

	// RED over 256 values: depth is logarithmic (8 add levels + io).
	red := stats("RED", 256)
	if red.Depth != 10 {
		t.Errorf("RED depth = %d, want 10 (log2(256) add levels + input + output)", red.Depth)
	}
	if red.VCmp != 255 {
		t.Errorf("RED compute nodes = %d, want 255", red.VCmp)
	}

	// TRD is shallow regardless of width: load -> mul -> add -> store.
	trd64 := stats("TRD", 64)
	trd512 := stats("TRD", 512)
	if trd64.Depth != trd512.Depth {
		t.Errorf("TRD depth changed with width: %d vs %d", trd64.Depth, trd512.Depth)
	}
	if trd512.VCmp != 512*5 {
		t.Errorf("TRD compute nodes = %d, want %d", trd512.VCmp, 512*5)
	}

	// NWN is deep: the wavefront serializes, so depth grows linearly in n.
	nwn6 := stats("NWN", 6)
	nwn12 := stats("NWN", 12)
	if nwn12.Depth <= nwn6.Depth+5 {
		t.Errorf("NWN depth did not grow linearly: %d -> %d", nwn6.Depth, nwn12.Depth)
	}

	// GMM n=8: 64 outputs, n³ = 512 multiplies.
	gmm := stats("GMM", 8)
	if gmm.VOut != 64 {
		t.Errorf("GMM outputs = %d, want 64", gmm.VOut)
	}

	// FFT rounds non-power-of-two sizes up.
	fft20 := stats("FFT", 20)
	fft32 := stats("FFT", 32)
	if fft20.VCmp != fft32.VCmp {
		t.Errorf("FFT(20) should round to FFT(32): %d vs %d compute nodes", fft20.VCmp, fft32.VCmp)
	}

	// AES is deep (10 rounds of 4 sequential layers) and its depth does
	// not depend on block count.
	aes2 := stats("AES", 2)
	aes8 := stats("AES", 8)
	if aes2.Depth != aes8.Depth {
		t.Errorf("AES depth varies with block count: %d vs %d", aes2.Depth, aes8.Depth)
	}
	if aes2.Depth < 40 {
		t.Errorf("AES depth = %d, want >= 40 (10 rounds x 4 layers)", aes2.Depth)
	}
}

// The maximum working set bounds the useful partitioning factor (Table II);
// the wide kernels must expose much more parallelism than the serial ones.
func TestParallelismProfile(t *testing.T) {
	maxWS := func(abbrev string) int {
		spec, _ := ByAbbrev(abbrev)
		g, err := spec.Build(0)
		if err != nil {
			t.Fatal(err)
		}
		return g.ComputeStats().MaxWS
	}
	if wide, narrow := maxWS("GMM"), maxWS("NWN"); wide <= narrow {
		t.Errorf("GMM max|WS| (%d) should exceed NWN's (%d)", wide, narrow)
	}
	if wide, narrow := maxWS("TRD"), maxWS("AES"); wide <= narrow {
		t.Errorf("TRD max|WS| (%d) should exceed AES's (%d)", wide, narrow)
	}
}

func TestTinySizesClampSafely(t *testing.T) {
	for _, spec := range All() {
		g, err := spec.Build(1)
		if err != nil {
			t.Errorf("%s: build(1): %v", spec.Abbrev, err)
			continue
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: build(1) invalid: %v", spec.Abbrev, err)
		}
	}
}
