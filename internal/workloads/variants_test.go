package workloads

import (
	"testing"

	"accelwall/internal/dfg"
)

func TestVariantsRegistry(t *testing.T) {
	vs := Variants()
	if len(vs) != 3 {
		t.Fatalf("variants = %d, want 3", len(vs))
	}
	for _, v := range vs {
		if _, err := ByAbbrev(v.Base); err != nil {
			t.Errorf("variant %s/%s has unknown base: %v", v.Base, v.Name, err)
		}
		if v.Effect == "" {
			t.Errorf("variant %s/%s missing effect description", v.Base, v.Name)
		}
	}
	if _, err := VariantByName("GMM/strassen"); err != nil {
		t.Errorf("VariantByName: %v", err)
	}
	if _, err := VariantByName("GMM/nope"); err == nil {
		t.Error("unknown variant should error")
	}
}

func TestVariantsValidate(t *testing.T) {
	for _, v := range Variants() {
		v := v
		t.Run(v.Base+"/"+v.Name, func(t *testing.T) {
			g, err := v.Build(0)
			if err != nil {
				t.Fatal(err)
			}
			if err := g.Validate(); err != nil {
				t.Fatal(err)
			}
			// Tiny sizes clamp safely too.
			small, err := v.Build(1)
			if err != nil {
				t.Fatal(err)
			}
			if err := small.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// mulCount returns the multiply count of a kernel build.
func mulCount(t *testing.T, build func(int) (*dfg.Graph, error), n int) int {
	t.Helper()
	g, err := build(n)
	if err != nil {
		t.Fatal(err)
	}
	return g.OpMix()[dfg.OpMul]
}

// Strassen's whole point: asymptotically fewer multiplies. At n=8:
// 7³ = 343 vs 8³ = 512.
func TestStrassenMultiplyCount(t *testing.T) {
	direct := mulCount(t, BuildGMM, 8)
	strassen := mulCount(t, BuildGMMStrassen, 8)
	if direct != 512 {
		t.Errorf("direct GMM(8) multiplies = %d, want 512", direct)
	}
	if strassen != 343 {
		t.Errorf("Strassen GMM(8) multiplies = %d, want 343 (7³)", strassen)
	}
	// The trade: more additions.
	gd, _ := BuildGMM(8)
	gs, _ := BuildGMMStrassen(8)
	addsDirect := gd.OpMix()[dfg.OpAdd] + gd.OpMix()[dfg.OpSub]
	addsStrassen := gs.OpMix()[dfg.OpAdd] + gs.OpMix()[dfg.OpSub]
	if addsStrassen <= addsDirect {
		t.Errorf("Strassen adds (%d) should exceed direct adds (%d)", addsStrassen, addsDirect)
	}
}

// Winograd F(2x2,3x3): 16 multiplies per 2x2 output tile vs 36 direct.
func TestWinogradMultiplyCount(t *testing.T) {
	n := 8
	direct := mulCount(t, BuildS2D, n)
	winograd := mulCount(t, BuildS2DWinograd, n)
	wantDirect := n * n * 9
	wantWinograd := (n / 2) * (n / 2) * 16
	if direct != wantDirect {
		t.Errorf("direct stencil multiplies = %d, want %d", direct, wantDirect)
	}
	if winograd != wantWinograd {
		t.Errorf("Winograd multiplies = %d, want %d", winograd, wantWinograd)
	}
	if float64(winograd)/float64(direct) > 0.5 {
		t.Errorf("Winograd should use < half the multiplies (%d vs %d)", winograd, direct)
	}
}

// Radix-4 FFT: 25% fewer twiddle multiplies than radix-2.
func TestRadix4MultiplyCount(t *testing.T) {
	n := 64
	r2 := mulCount(t, BuildFFT, n)
	r4 := mulCount(t, BuildFFTRadix4, n)
	// radix-2: (n/2)·log2(n) = 192; radix-4: 3·(n/4)·log4(n) = 144.
	if r2 != 192 {
		t.Errorf("radix-2 multiplies = %d, want 192", r2)
	}
	if r4 != 144 {
		t.Errorf("radix-4 multiplies = %d, want 144", r4)
	}
}

// Variants compute over the same IO signature as their base kernels.
func TestVariantIOSignatures(t *testing.T) {
	cases := []struct {
		base    func(int) (*dfg.Graph, error)
		variant func(int) (*dfg.Graph, error)
		n       int
		// extraInputs the variant legitimately adds (e.g. the transformed
		// Winograd filter replaces the single coefficient input).
		outMustMatch bool
	}{
		{BuildGMM, BuildGMMStrassen, 8, true},
		{BuildS2D, BuildS2DWinograd, 8, true},
		{BuildFFT, BuildFFTRadix4, 64, true},
	}
	for _, tc := range cases {
		gb, err := tc.base(tc.n)
		if err != nil {
			t.Fatal(err)
		}
		gv, err := tc.variant(tc.n)
		if err != nil {
			t.Fatal(err)
		}
		sb, sv := gb.ComputeStats(), gv.ComputeStats()
		if tc.outMustMatch && sb.VOut != sv.VOut {
			t.Errorf("%s vs %s: outputs %d vs %d", gb.Name, gv.Name, sb.VOut, sv.VOut)
		}
	}
}

func TestRadix4RoundsUpToPowerOfFour(t *testing.T) {
	g, err := BuildFFTRadix4(20) // rounds up to 64
	if err != nil {
		t.Fatal(err)
	}
	if got := g.ComputeStats().VOut; got != 64 {
		t.Errorf("FFTRadix4(20) outputs = %d, want 64", got)
	}
	g, err = BuildFFTRadix4(16) // already a power of four
	if err != nil {
		t.Fatal(err)
	}
	if got := g.ComputeStats().VOut; got != 16 {
		t.Errorf("FFTRadix4(16) outputs = %d, want 16", got)
	}
}
