// Package workloads builds dataflow graphs for the sixteen accelerator
// benchmarks the paper sweeps in Section VI (Table IV) — kernels drawn
// from MachSuite, SHOC, CortexSuite and PARSEC plus one internal workload
// — and two deep-learning kernels (2D convolution, attention) added
// beyond the paper's set.
//
// The original study extracts DFGs from dynamic LLVM traces via Aladdin;
// here each kernel is built directly as a parameterized graph whose
// structure (parallel width, depth, operation mix, memory behaviour)
// matches the algorithm, which is what the specialization-concept sweep
// actually consumes. Every builder takes a problem-size parameter n
// (<= 0 selects a per-kernel default) and returns a validated graph.
//
// TableIV returns exactly the paper's sixteen applications (the set the
// paper-reproduction experiments iterate); All adds the deep-learning
// kernels and is what the serving registry exposes.
package workloads

import (
	"fmt"
	"math/bits"

	"accelwall/internal/dfg"
)

// Spec describes one Table IV application.
type Spec struct {
	Abbrev string // the paper's abbreviation (AES, BFS, ...)
	Name   string // full benchmark name
	Domain string // application domain column of Table IV
	// Build constructs the kernel's DFG for problem size n; n <= 0 selects
	// the kernel's default size.
	Build func(n int) (*dfg.Graph, error)
}

// TableIV returns the paper's sixteen applications in Table IV order.
// The paper-reproduction experiments (Table II, Table IV, Figure 14)
// iterate exactly this set, so their outputs stay pinned to the paper.
func TableIV() []Spec {
	return []Spec{
		{"AES", "Advanced Encryption Standard", "Cryptography", BuildAES},
		{"BFS", "Breadth-First Search", "Graph Processing", BuildBFS},
		{"FFT", "Fast Fourier Transform", "Signal Processing", BuildFFT},
		{"GMM", "General Matrix Multiplication", "Linear Algebra", BuildGMM},
		{"MDY", "Molecular Dynamics", "Molecular Dynamics", BuildMDY},
		{"KNN", "K-Nearest Neighbors", "Data Mining", BuildKNN},
		{"NWN", "Needleman-Wunsch", "Bioinformatics", BuildNWN},
		{"RBM", "Restricted Boltzmann machine", "Machine Learning", BuildRBM},
		{"RED", "Reduction", "Microbenchmarking", BuildRED},
		{"SAD", "Sum of Absolute Differences", "Video Processing", BuildSAD},
		{"SRT", "Merge Sort", "Algorithms", BuildSRT},
		{"SMV", "Sparse Matrix-Vector Multiply", "Linear Algebra", BuildSMV},
		{"SSP", "Single Source, Shortest Path", "Graph Processing", BuildSSP},
		{"S2D", "2D Stencil", "Image Processing", BuildS2D},
		{"S3D", "3D Stencil", "Image Processing", BuildS3D},
		{"TRD", "Triad", "Microbenchmarking", BuildTRD},
	}
}

// All returns every registered application: the sixteen Table IV kernels
// followed by the deep-learning additions. This is the set the serving
// layer (/v1/workloads, sweep and search requests) resolves against.
func All() []Spec {
	return append(TableIV(),
		Spec{"CNV", "2D Convolution Layer", "Deep Learning", BuildConv2D},
		Spec{"ATT", "Scaled Dot-Product Attention", "Deep Learning", BuildAttention},
	)
}

// ByAbbrev returns the spec with the given abbreviation.
func ByAbbrev(abbrev string) (Spec, error) {
	for _, s := range All() {
		if s.Abbrev == abbrev {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workloads: unknown application %q", abbrev)
}

// defaultSize substitutes the kernel default when n is non-positive.
func defaultSize(n, def int) int {
	if n <= 0 {
		return def
	}
	return n
}

// finish validates g and returns it, wrapping any structural error with the
// kernel name so builder bugs are attributable.
func finish(g *dfg.Graph) (*dfg.Graph, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("workloads: %s: %w", g.Name, err)
	}
	return g, nil
}

// reduceTree folds ids pairwise with op until one value remains — the
// balanced reduction pattern shared by many kernels.
func reduceTree(g *dfg.Graph, op dfg.Op, ids []dfg.NodeID) dfg.NodeID {
	for len(ids) > 1 {
		var next []dfg.NodeID
		for i := 0; i+1 < len(ids); i += 2 {
			next = append(next, g.MustOp(op, ids[i], ids[i+1]))
		}
		if len(ids)%2 == 1 {
			next = append(next, ids[len(ids)-1])
		}
		ids = next
	}
	return ids[0]
}

// BuildAES models n parallel 16-byte AES block encryptions: ten rounds of
// SubBytes (nonlinear S-box), ShiftRows (shift), MixColumns (logic network)
// and AddRoundKey (xor), giving a deep serial pipeline per block with block
// level parallelism across blocks. n is the number of blocks (default 4).
func BuildAES(n int) (*dfg.Graph, error) {
	n = defaultSize(n, 4)
	const stateBytes = 16
	const rounds = 10
	g := dfg.New("AES")
	key := make([]dfg.NodeID, stateBytes)
	for i := range key {
		key[i] = g.AddInput(fmt.Sprintf("key%d", i))
	}
	for b := 0; b < n; b++ {
		state := make([]dfg.NodeID, stateBytes)
		for i := range state {
			state[i] = g.AddInput(fmt.Sprintf("pt%d_%d", b, i))
		}
		for r := 0; r < rounds; r++ {
			// SubBytes: per-byte S-box lookup.
			for i := range state {
				state[i] = g.MustOp(dfg.OpNonlinear, state[i])
			}
			// ShiftRows: byte rotation, modeled per row as a shift op.
			for i := range state {
				state[i] = g.MustOp(dfg.OpShift, state[i])
			}
			// MixColumns: each output byte mixes the four bytes of its
			// column via GF(2^8) logic. Skipped in the final round, as in
			// the real cipher.
			if r != rounds-1 {
				mixed := make([]dfg.NodeID, stateBytes)
				for col := 0; col < 4; col++ {
					c0, c1, c2, c3 := state[col*4], state[col*4+1], state[col*4+2], state[col*4+3]
					for rrow := 0; rrow < 4; rrow++ {
						m1 := g.MustOp(dfg.OpLogic, c0, c1)
						m2 := g.MustOp(dfg.OpLogic, c2, c3)
						mixed[col*4+rrow] = g.MustOp(dfg.OpLogic, m1, m2)
					}
				}
				state = mixed
			}
			// AddRoundKey: xor with the round key.
			for i := range state {
				state[i] = g.MustOp(dfg.OpLogic, state[i], key[i])
			}
		}
		for i, s := range state {
			g.MustOutput(fmt.Sprintf("ct%d_%d", b, i), s)
		}
	}
	return finish(g)
}

// BuildBFS models one frontier expansion of breadth-first search on a graph
// with n frontier vertices of degree 4: per edge a neighbor-list load, a
// visited check (load + compare), and a conditional depth write. The
// output per vertex is the updated visit mask — an irregular, memory-bound
// kernel. Default n = 64.
func BuildBFS(n int) (*dfg.Graph, error) {
	n = defaultSize(n, 64)
	const degree = 4
	g := dfg.New("BFS")
	depth := g.AddInput("level")
	for v := 0; v < n; v++ {
		vtx := g.AddInput(fmt.Sprintf("frontier%d", v))
		var updates []dfg.NodeID
		for e := 0; e < degree; e++ {
			nbr := g.MustOp(dfg.OpLoad, vtx)             // neighbor id
			visited := g.MustOp(dfg.OpLoad, nbr)         // visited[] lookup
			isNew := g.MustOp(dfg.OpCmp, visited, depth) // visited check
			upd := g.MustOp(dfg.OpStore, isNew, depth)   // conditional depth write
			updates = append(updates, upd)
		}
		g.MustOutput(fmt.Sprintf("mask%d", v), reduceTree(g, dfg.OpLogic, updates))
	}
	return finish(g)
}

// BuildFFT models an n-point radix-2 decimation-in-time FFT: log2(n)
// butterfly stages of n/2 butterflies, each a twiddle multiply, an add and
// a subtract. n must reach a power of two (it is rounded up); default 64.
func BuildFFT(n int) (*dfg.Graph, error) {
	n = defaultSize(n, 64)
	if n < 2 {
		n = 2
	}
	if n&(n-1) != 0 {
		n = 1 << bits.Len(uint(n))
	}
	g := dfg.New("FFT")
	vals := make([]dfg.NodeID, n)
	for i := range vals {
		vals[i] = g.AddInput(fmt.Sprintf("x%d", i))
	}
	tw := g.AddInput("twiddles")
	stages := bits.TrailingZeros(uint(n))
	for s := 0; s < stages; s++ {
		half := 1 << s
		next := make([]dfg.NodeID, n)
		copy(next, vals)
		for base := 0; base < n; base += half * 2 {
			for k := 0; k < half; k++ {
				a, b := vals[base+k], vals[base+k+half]
				t := g.MustOp(dfg.OpMul, b, tw)
				next[base+k] = g.MustOp(dfg.OpAdd, a, t)
				next[base+k+half] = g.MustOp(dfg.OpSub, a, t)
			}
		}
		vals = next
	}
	for i, v := range vals {
		g.MustOutput(fmt.Sprintf("X%d", i), v)
	}
	return finish(g)
}

// BuildGMM models an n×n by n×n matrix multiplication: n² dot products of
// length n (multiplies feeding a balanced add tree). Default n = 8.
func BuildGMM(n int) (*dfg.Graph, error) {
	n = defaultSize(n, 8)
	g := dfg.New("GMM")
	a := make([][]dfg.NodeID, n)
	b := make([][]dfg.NodeID, n)
	for i := 0; i < n; i++ {
		a[i] = make([]dfg.NodeID, n)
		b[i] = make([]dfg.NodeID, n)
		for j := 0; j < n; j++ {
			a[i][j] = g.AddInput(fmt.Sprintf("a%d_%d", i, j))
			b[i][j] = g.AddInput(fmt.Sprintf("b%d_%d", i, j))
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			prods := make([]dfg.NodeID, n)
			for k := 0; k < n; k++ {
				prods[k] = g.MustOp(dfg.OpMul, a[i][k], b[k][j])
			}
			g.MustOutput(fmt.Sprintf("c%d_%d", i, j), reduceTree(g, dfg.OpAdd, prods))
		}
	}
	return finish(g)
}

// BuildMDY models one timestep of n-body molecular dynamics with an
// 8-neighbor cutoff: per pair a displacement (3 subs), squared distance
// (3 muls + adds), inverse-sqrt force magnitude (sqrt + div), and force
// accumulation per body. Default n = 16.
func BuildMDY(n int) (*dfg.Graph, error) {
	n = defaultSize(n, 16)
	const neighbors = 8
	g := dfg.New("MDY")
	pos := make([][3]dfg.NodeID, n)
	for i := range pos {
		for d := 0; d < 3; d++ {
			pos[i][d] = g.AddInput(fmt.Sprintf("p%d_%c", i, 'x'+d))
		}
	}
	for i := 0; i < n; i++ {
		var forces []dfg.NodeID
		for e := 1; e <= neighbors; e++ {
			j := (i + e) % n
			var dist2Terms []dfg.NodeID
			var diffs [3]dfg.NodeID
			for d := 0; d < 3; d++ {
				diffs[d] = g.MustOp(dfg.OpSub, pos[i][d], pos[j][d])
				dist2Terms = append(dist2Terms, g.MustOp(dfg.OpMul, diffs[d], diffs[d]))
			}
			dist2 := reduceTree(g, dfg.OpAdd, dist2Terms)
			dist := g.MustOp(dfg.OpSqrt, dist2)
			mag := g.MustOp(dfg.OpDiv, dist, dist2)
			forces = append(forces, g.MustOp(dfg.OpMul, mag, diffs[0]))
		}
		g.MustOutput(fmt.Sprintf("f%d", i), reduceTree(g, dfg.OpAdd, forces))
	}
	return finish(g)
}

// BuildKNN models a k-nearest-neighbors query against n reference points in
// 4 dimensions: per point a squared Euclidean distance (subs, muls, add
// tree), then a global compare-select reduction for the minimum. Default
// n = 64.
func BuildKNN(n int) (*dfg.Graph, error) {
	n = defaultSize(n, 64)
	const dims = 4
	g := dfg.New("KNN")
	query := make([]dfg.NodeID, dims)
	for d := range query {
		query[d] = g.AddInput(fmt.Sprintf("q%d", d))
	}
	dists := make([]dfg.NodeID, n)
	for i := 0; i < n; i++ {
		terms := make([]dfg.NodeID, dims)
		for d := 0; d < dims; d++ {
			ref := g.AddInput(fmt.Sprintf("r%d_%d", i, d))
			diff := g.MustOp(dfg.OpSub, ref, query[d])
			terms[d] = g.MustOp(dfg.OpMul, diff, diff)
		}
		dists[i] = reduceTree(g, dfg.OpAdd, terms)
	}
	g.MustOutput("nearest", reduceTree(g, dfg.OpCmp, dists))
	return finish(g)
}

// BuildNWN models Needleman-Wunsch sequence alignment of two length-n
// sequences: the n×n dynamic-programming lattice where each cell takes the
// max of three predecessor scores plus the substitution cost. The
// anti-diagonal wavefront makes the DFG deep (depth ~2n). Default n = 12.
func BuildNWN(n int) (*dfg.Graph, error) {
	n = defaultSize(n, 12)
	if n < 2 {
		n = 2 // a single cell has no alignment lattice (and would strand the gap input)
	}
	g := dfg.New("NWN")
	seqA := make([]dfg.NodeID, n)
	seqB := make([]dfg.NodeID, n)
	for i := 0; i < n; i++ {
		seqA[i] = g.AddInput(fmt.Sprintf("a%d", i))
		seqB[i] = g.AddInput(fmt.Sprintf("b%d", i))
	}
	gap := g.AddInput("gap")
	cells := make([][]dfg.NodeID, n)
	for i := 0; i < n; i++ {
		cells[i] = make([]dfg.NodeID, n)
		for j := 0; j < n; j++ {
			// The substitution score only participates where a diagonal
			// predecessor exists (or at the origin); border cells are pure
			// gap extensions.
			var diag, up, left dfg.NodeID
			switch {
			case i == 0 && j == 0:
				diag = g.MustOp(dfg.OpCmp, seqA[i], seqB[j])
			case i == 0:
				diag = g.MustOp(dfg.OpAdd, cells[i][j-1], gap)
			case j == 0:
				diag = g.MustOp(dfg.OpAdd, cells[i-1][j], gap)
			default:
				match := g.MustOp(dfg.OpCmp, seqA[i], seqB[j])
				diag = g.MustOp(dfg.OpAdd, cells[i-1][j-1], match)
			}
			if i > 0 {
				up = g.MustOp(dfg.OpAdd, cells[i-1][j], gap)
				diag = g.MustOp(dfg.OpCmp, diag, up)
			}
			if j > 0 {
				left = g.MustOp(dfg.OpAdd, cells[i][j-1], gap)
				diag = g.MustOp(dfg.OpCmp, diag, left)
			}
			cells[i][j] = diag
		}
	}
	// Only the final score is the kernel output; interior cells feed
	// later cells. Edge cells on the last row/column that feed nothing
	// would dangle, so they also become outputs (the traceback row).
	for i := 0; i < n; i++ {
		if i < n-1 {
			g.MustOutput(fmt.Sprintf("row%d", i), cells[i][n-1])
			g.MustOutput(fmt.Sprintf("col%d", i), cells[n-1][i])
		}
	}
	g.MustOutput("score", cells[n-1][n-1])
	return finish(g)
}

// BuildRBM models one Gibbs half-step of a restricted Boltzmann machine
// with n visible and n hidden units: a dense matrix-vector product per
// hidden unit followed by a sigmoid activation (nonlinear). Default n = 16.
func BuildRBM(n int) (*dfg.Graph, error) {
	n = defaultSize(n, 16)
	g := dfg.New("RBM")
	visible := make([]dfg.NodeID, n)
	for i := range visible {
		visible[i] = g.AddInput(fmt.Sprintf("v%d", i))
	}
	for h := 0; h < n; h++ {
		terms := make([]dfg.NodeID, n)
		for i := 0; i < n; i++ {
			w := g.AddInput(fmt.Sprintf("w%d_%d", h, i))
			terms[i] = g.MustOp(dfg.OpMul, w, visible[i])
		}
		pre := reduceTree(g, dfg.OpAdd, terms)
		g.MustOutput(fmt.Sprintf("h%d", h), g.MustOp(dfg.OpNonlinear, pre))
	}
	return finish(g)
}

// BuildRED models a sum reduction over n values: the canonical balanced
// binary add tree, maximally parallel and log-depth. Default n = 256.
func BuildRED(n int) (*dfg.Graph, error) {
	n = defaultSize(n, 256)
	if n < 2 {
		n = 2
	}
	g := dfg.New("RED")
	leaves := make([]dfg.NodeID, n)
	for i := range leaves {
		leaves[i] = g.AddInput(fmt.Sprintf("x%d", i))
	}
	g.MustOutput("sum", reduceTree(g, dfg.OpAdd, leaves))
	return finish(g)
}

// BuildSAD models sum-of-absolute-differences block matching over n 16-pixel
// blocks (the PARSEC x264 motion-estimation kernel): per pixel a subtract
// and an absolute value (logic), then an add-tree per block and a final
// best-match compare chain. Default n = 16.
func BuildSAD(n int) (*dfg.Graph, error) {
	n = defaultSize(n, 16)
	const pixels = 16
	g := dfg.New("SAD")
	ref := make([]dfg.NodeID, pixels)
	for p := range ref {
		ref[p] = g.AddInput(fmt.Sprintf("ref%d", p))
	}
	sads := make([]dfg.NodeID, n)
	for b := 0; b < n; b++ {
		diffs := make([]dfg.NodeID, pixels)
		for p := 0; p < pixels; p++ {
			cand := g.AddInput(fmt.Sprintf("c%d_%d", b, p))
			d := g.MustOp(dfg.OpSub, cand, ref[p])
			diffs[p] = g.MustOp(dfg.OpLogic, d) // absolute value
		}
		sads[b] = reduceTree(g, dfg.OpAdd, diffs)
	}
	g.MustOutput("best", reduceTree(g, dfg.OpCmp, sads))
	return finish(g)
}

// BuildSRT models a bitonic merge-sort network over n keys: log²(n)
// compare-exchange stages. Each compare-exchange is a compare plus two
// select (logic) operations. n is rounded up to a power of two; default 32.
func BuildSRT(n int) (*dfg.Graph, error) {
	n = defaultSize(n, 32)
	if n < 2 {
		n = 2
	}
	if n&(n-1) != 0 {
		n = 1 << bits.Len(uint(n))
	}
	g := dfg.New("SRT")
	keys := make([]dfg.NodeID, n)
	for i := range keys {
		keys[i] = g.AddInput(fmt.Sprintf("k%d", i))
	}
	cmpExchange := func(i, j int) {
		c := g.MustOp(dfg.OpCmp, keys[i], keys[j])
		lo := g.MustOp(dfg.OpLogic, c, keys[i])
		hi := g.MustOp(dfg.OpLogic, c, keys[j])
		keys[i], keys[j] = lo, hi
	}
	for k := 2; k <= n; k <<= 1 {
		for j := k >> 1; j > 0; j >>= 1 {
			for i := 0; i < n; i++ {
				l := i ^ j
				if l > i {
					cmpExchange(i, l)
				}
			}
		}
	}
	for i, k := range keys {
		g.MustOutput(fmt.Sprintf("s%d", i), k)
	}
	return finish(g)
}

// BuildSMV models sparse matrix-vector multiply in CSR form over n rows
// with 6 nonzeros per row: per nonzero a column-index load, a gathered
// vector load, a multiply, then a per-row accumulation chain (serial, as
// CSR accumulation is). Default n = 32.
func BuildSMV(n int) (*dfg.Graph, error) {
	n = defaultSize(n, 32)
	const nnz = 6
	g := dfg.New("SMV")
	vec := g.AddInput("x")
	for r := 0; r < n; r++ {
		rowPtr := g.AddInput(fmt.Sprintf("row%d", r))
		var acc dfg.NodeID
		for e := 0; e < nnz; e++ {
			col := g.MustOp(dfg.OpLoad, rowPtr)  // column index
			xv := g.MustOp(dfg.OpLoad, col, vec) // gathered x[col]
			av := g.MustOp(dfg.OpLoad, rowPtr)   // matrix value
			prod := g.MustOp(dfg.OpMul, av, xv)
			if e == 0 {
				acc = prod
			} else {
				acc = g.MustOp(dfg.OpAdd, acc, prod) // serial CSR accumulation
			}
		}
		g.MustOutput(fmt.Sprintf("y%d", r), acc)
	}
	return finish(g)
}

// BuildSSP models Bellman-Ford single-source shortest path on n vertices of
// degree 4, run for 4 relaxation rounds: per edge an add (distance +
// weight) and a min (compare). Rounds serialize, edges within a round
// parallelize. Default n = 32.
func BuildSSP(n int) (*dfg.Graph, error) {
	n = defaultSize(n, 32)
	const degree = 4
	const rounds = 4
	g := dfg.New("SSP")
	dist := make([]dfg.NodeID, n)
	for v := range dist {
		dist[v] = g.AddInput(fmt.Sprintf("d%d", v))
	}
	weights := g.AddInput("w")
	for r := 0; r < rounds; r++ {
		next := make([]dfg.NodeID, n)
		for v := 0; v < n; v++ {
			best := dist[v]
			for e := 1; e <= degree; e++ {
				u := (v + e*7) % n
				cand := g.MustOp(dfg.OpAdd, dist[u], weights)
				best = g.MustOp(dfg.OpCmp, best, cand) // min relaxation
			}
			next[v] = best
		}
		dist = next
	}
	for v, d := range dist {
		g.MustOutput(fmt.Sprintf("dist%d", v), d)
	}
	return finish(g)
}

// BuildS2D models a 9-point 2D stencil over an n×n interior: per output
// pixel nine coefficient multiplies feeding an add tree — the convolution
// engine pattern. Default n = 8.
func BuildS2D(n int) (*dfg.Graph, error) {
	n = defaultSize(n, 8)
	g := dfg.New("S2D")
	grid := make([][]dfg.NodeID, n+2)
	for i := range grid {
		grid[i] = make([]dfg.NodeID, n+2)
		for j := range grid[i] {
			grid[i][j] = g.AddInput(fmt.Sprintf("g%d_%d", i, j))
		}
	}
	coeff := g.AddInput("c")
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			var taps []dfg.NodeID
			for di := -1; di <= 1; di++ {
				for dj := -1; dj <= 1; dj++ {
					taps = append(taps, g.MustOp(dfg.OpMul, grid[i+di][j+dj], coeff))
				}
			}
			g.MustOutput(fmt.Sprintf("o%d_%d", i, j), reduceTree(g, dfg.OpAdd, taps))
		}
	}
	return finish(g)
}

// BuildS3D models a 7-point 3D stencil over an n×n×n interior — the
// Section VI case-study kernel (Figure 12). Default n = 4.
func BuildS3D(n int) (*dfg.Graph, error) {
	n = defaultSize(n, 4)
	g := dfg.New("S3D")
	// A 7-point stencil never reads the halo's edges and corners, so grid
	// inputs are created lazily: only cells some output actually taps
	// become input vertices.
	c0 := g.AddInput("C0")
	c1 := g.AddInput("C1")
	cells := make(map[[3]int]dfg.NodeID)
	cell := func(i, j, k int) dfg.NodeID {
		key := [3]int{i, j, k}
		if id, ok := cells[key]; ok {
			return id
		}
		id := g.AddInput(fmt.Sprintf("g%d_%d_%d", i, j, k))
		cells[key] = id
		return id
	}
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			for k := 1; k <= n; k++ {
				center := g.MustOp(dfg.OpMul, cell(i, j, k), c0)
				taps := []dfg.NodeID{
					g.MustOp(dfg.OpMul, cell(i-1, j, k), c1),
					g.MustOp(dfg.OpMul, cell(i+1, j, k), c1),
					g.MustOp(dfg.OpMul, cell(i, j-1, k), c1),
					g.MustOp(dfg.OpMul, cell(i, j+1, k), c1),
					g.MustOp(dfg.OpMul, cell(i, j, k-1), c1),
					g.MustOp(dfg.OpMul, cell(i, j, k+1), c1),
				}
				sum := reduceTree(g, dfg.OpAdd, taps)
				g.MustOutput(fmt.Sprintf("o%d_%d_%d", i, j, k), g.MustOp(dfg.OpAdd, center, sum))
			}
		}
	}
	return finish(g)
}

// BuildTRD models the SHOC Triad streaming kernel a[i] = b[i] + s·c[i] over
// n elements: two loads, a multiply, an add, a store per element — wide,
// shallow, and bandwidth-bound. Default n = 128.
func BuildTRD(n int) (*dfg.Graph, error) {
	n = defaultSize(n, 128)
	g := dfg.New("TRD")
	s := g.AddInput("s")
	for i := 0; i < n; i++ {
		b := g.AddInput(fmt.Sprintf("b%d", i))
		c := g.AddInput(fmt.Sprintf("c%d", i))
		lb := g.MustOp(dfg.OpLoad, b)
		lc := g.MustOp(dfg.OpLoad, c)
		prod := g.MustOp(dfg.OpMul, lc, s)
		sum := g.MustOp(dfg.OpAdd, lb, prod)
		st := g.MustOp(dfg.OpStore, sum)
		g.MustOutput(fmt.Sprintf("a%d", i), st)
	}
	return finish(g)
}
