package workloads

import (
	"testing"

	"accelwall/internal/dfg"
)

func TestDomainKernelsRegistry(t *testing.T) {
	ks := DomainKernels()
	if len(ks) != 3 {
		t.Fatalf("domain kernels = %d, want 3", len(ks))
	}
	for _, k := range ks {
		if k.Domain == "" || k.Name == "" || k.Build == nil {
			t.Errorf("incomplete kernel %+v", k)
		}
	}
	if _, err := DomainKernelByName("SHA256d"); err != nil {
		t.Error(err)
	}
	if _, err := DomainKernelByName("nope"); err == nil {
		t.Error("unknown kernel should error")
	}
}

func TestDomainKernelsValidate(t *testing.T) {
	for _, k := range DomainKernels() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			for _, n := range []int{0, 1, 3} {
				g, err := k.Build(n)
				if err != nil {
					t.Fatalf("build(%d): %v", n, err)
				}
				if err := g.Validate(); err != nil {
					t.Fatalf("validate(%d): %v", n, err)
				}
			}
		})
	}
}

// SHA-256's defining property for the accelerator-wall analysis: the round
// chain serializes, so depth grows with rounds while nonce parallelism
// only adds width — "the limited number of ways to represent the core
// algorithm in hardware".
func TestSHA256dStructure(t *testing.T) {
	one, err := BuildSHA256d(1)
	if err != nil {
		t.Fatal(err)
	}
	four, err := BuildSHA256d(4)
	if err != nil {
		t.Fatal(err)
	}
	s1, s4 := one.ComputeStats(), four.ComputeStats()
	if s1.Depth != s4.Depth {
		t.Errorf("nonce parallelism changed depth: %d vs %d", s1.Depth, s4.Depth)
	}
	// Double hashing: deep. Two passes of 24 rounds, each round ~4 serial
	// adds deep.
	if s1.Depth < 100 {
		t.Errorf("SHA256d depth = %d, want >= 100 (serial round chain)", s1.Depth)
	}
	if s4.MaxWS < 4*s1.MaxWS/2 {
		t.Errorf("nonce parallelism should widen the graph: %d vs %d", s4.MaxWS, s1.MaxWS)
	}
	// The op mix is logic/shift/add dominated — no multiplies at all,
	// which is why mining ASICs are pure datapath replication.
	mix := one.OpMix()
	if mix[dfg.OpMul] != 0 || mix[dfg.OpDiv] != 0 {
		t.Errorf("SHA256d should have no multiplies/divides: %v", mix)
	}
	if mix[dfg.OpLogic] == 0 || mix[dfg.OpShift] == 0 || mix[dfg.OpAdd] == 0 {
		t.Errorf("SHA256d op mix missing core ops: %v", mix)
	}
}

func TestIDCTStructure(t *testing.T) {
	g, err := BuildIDCT8x8(2)
	if err != nil {
		t.Fatal(err)
	}
	s := g.ComputeStats()
	// 2 blocks × 64 pixels out.
	if s.VOut != 128 {
		t.Errorf("outputs = %d, want 128", s.VOut)
	}
	// Row-column structure: 16 1D transforms per block, each with 10
	// multiplies (2 even-part scalings, 4 odd scalings, 4 recombinations).
	if got := g.OpMix()[dfg.OpMul]; got != 2*16*10 {
		t.Errorf("multiplies = %d, want %d", got, 2*16*10)
	}
	// Blocks are independent: doubling blocks must not deepen the graph.
	g2, err := BuildIDCT8x8(4)
	if err != nil {
		t.Fatal(err)
	}
	if g2.ComputeStats().Depth != s.Depth {
		t.Error("block parallelism changed depth")
	}
}

func TestShaderStructure(t *testing.T) {
	g, err := BuildShader(8)
	if err != nil {
		t.Fatal(err)
	}
	mix := g.OpMix()
	// Per vertex: 16 MVP multiplies + 3 interpolation + 3 diffuse + 1 texel
	// modulate = 23; perspective divide ×3.
	if mix[dfg.OpMul] != 8*23 {
		t.Errorf("multiplies = %d, want %d", mix[dfg.OpMul], 8*23)
	}
	if mix[dfg.OpDiv] != 8*3 {
		t.Errorf("divides = %d, want %d", mix[dfg.OpDiv], 8*3)
	}
	if mix[dfg.OpLoad] != 8 || mix[dfg.OpStore] != 8 {
		t.Errorf("texture/framebuffer ops = %d/%d, want 8/8", mix[dfg.OpLoad], mix[dfg.OpStore])
	}
	if mix[dfg.OpNonlinear] != 8 {
		t.Errorf("specular units = %d, want 8", mix[dfg.OpNonlinear])
	}
	// Vertices are independent.
	s8 := g.ComputeStats()
	g16, err := BuildShader(16)
	if err != nil {
		t.Fatal(err)
	}
	if g16.ComputeStats().Depth != s8.Depth {
		t.Error("vertex parallelism changed depth")
	}
}
