package csr

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"accelwall/internal/gains"
)

func model() *gains.Model { return gains.NewModel(nil) }

func obs(name string, node, die, tdp, freq, gain float64) Observation {
	return Observation{
		Name: name,
		Chip: gains.Config{NodeNM: node, DieMM2: die, TDPW: tdp, FreqGHz: freq},
		Gain: gain,
	}
}

func TestAnalyzeBaselineRow(t *testing.T) {
	series := []Observation{
		obs("old", 65, 100, 100, 1, 10),
		obs("new", 16, 100, 100, 1, 80),
	}
	rows, err := Analyze(model(), gains.TargetThroughput, series, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	b := rows[0]
	if b.Gain != 1 || b.PhysicalGain != 1 || b.CSR != 1 {
		t.Errorf("baseline row = %+v, want all ones", b)
	}
	if rows[1].Gain != 8 {
		t.Errorf("relative gain = %g, want 8", rows[1].Gain)
	}
	if rows[1].PhysicalGain <= 1 {
		t.Errorf("16nm physical gain over 65nm = %g, want > 1", rows[1].PhysicalGain)
	}
}

// Equation 1 invariant: CSR × PhysicalGain == Gain for every row.
func TestAnalyzeEquationOneInvariant(t *testing.T) {
	series := []Observation{
		obs("a", 65, 80, 60, 0.8, 3),
		obs("b", 40, 120, 90, 1.0, 12),
		obs("c", 28, 200, 150, 1.2, 55),
		obs("d", 16, 300, 250, 1.4, 140),
	}
	for _, target := range []gains.Target{gains.TargetThroughput, gains.TargetEfficiency} {
		rows, err := Analyze(model(), target, series, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			if math.Abs(r.CSR*r.PhysicalGain-r.Gain) > 1e-9*r.Gain {
				t.Errorf("%v %s: CSR·Phy = %g, Gain = %g", target, r.Name, r.CSR*r.PhysicalGain, r.Gain)
			}
		}
	}
}

func TestAnalyzeErrors(t *testing.T) {
	good := []Observation{obs("a", 45, 100, 100, 1, 5), obs("b", 28, 100, 100, 1, 9)}
	if _, err := Analyze(nil, gains.TargetThroughput, good, 0); err == nil {
		t.Error("nil model should error")
	}
	if _, err := Analyze(model(), gains.TargetThroughput, nil, 0); err == nil {
		t.Error("empty series should error")
	}
	if _, err := Analyze(model(), gains.TargetThroughput, good, 5); err == nil {
		t.Error("out-of-range baseline should error")
	}
	bad := []Observation{obs("a", 45, 100, 100, 1, 0)}
	if _, err := Analyze(model(), gains.TargetThroughput, bad, 0); err == nil {
		t.Error("non-positive gain should error")
	}
	badChip := []Observation{obs("a", 45, 100, 100, 1, 5), obs("b", 0, 100, 100, 1, 9)}
	if _, err := Analyze(model(), gains.TargetThroughput, badChip, 0); err == nil {
		t.Error("invalid chip config should error")
	}
}

func TestPairwiseDecomposition(t *testing.T) {
	a := obs("new", 16, 100, 100, 1, 60)
	b := obs("old", 65, 100, 100, 1, 10)
	reported, cmosDriven, csrRatio, err := Pairwise(model(), gains.TargetThroughput, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if reported != 6 {
		t.Errorf("reported = %g, want 6", reported)
	}
	// Equation 2: reported = csrRatio × cmosDriven.
	if math.Abs(csrRatio*cmosDriven-reported) > 1e-9*reported {
		t.Errorf("Eq2 violated: %g * %g != %g", csrRatio, cmosDriven, reported)
	}
	if _, _, _, err := Pairwise(model(), gains.TargetThroughput, obs("x", 45, 1, 1, 1, 0), b); err == nil {
		t.Error("bad numerator should error")
	}
	if _, _, _, err := Pairwise(model(), gains.TargetThroughput, a, obs("x", 45, 1, 1, 1, -2)); err == nil {
		t.Error("bad denominator should error")
	}
}

func TestBuildRelationsDirect(t *testing.T) {
	ag := AppGains{
		"Tesla":  {"app1": 1, "app2": 2, "app3": 1, "app4": 1, "app5": 4},
		"Kepler": {"app1": 2, "app2": 4, "app3": 2, "app4": 2, "app5": 8},
	}
	rm, err := BuildRelations(ag, 5)
	if err != nil {
		t.Fatal(err)
	}
	g, ok := rm.Gain("Kepler", "Tesla")
	if !ok {
		t.Fatal("Kepler->Tesla relation missing")
	}
	if math.Abs(g-2) > 1e-12 {
		t.Errorf("Gain(Kepler->Tesla) = %g, want 2", g)
	}
	if !rm.Direct("Kepler", "Tesla") {
		t.Error("pair with 5 shared apps should be direct")
	}
	inv, _ := rm.Gain("Tesla", "Kepler")
	if math.Abs(g*inv-1) > 1e-12 {
		t.Errorf("relation not reciprocal: %g * %g", g, inv)
	}
}

func TestBuildRelationsTransitive(t *testing.T) {
	// A and C share no apps; both share five with B. The closure must
	// relate A to C through B: Gain(A->C) = Gain(A->B)·Gain(B->C).
	ag := AppGains{
		"A": {"a1": 2, "a2": 2, "a3": 2, "a4": 2, "a5": 2},
		"B": {"a1": 1, "a2": 1, "a3": 1, "a4": 1, "a5": 1, "b1": 1, "b2": 1, "b3": 1, "b4": 1, "b5": 1},
		"C": {"b1": 4, "b2": 4, "b3": 4, "b4": 4, "b5": 4},
	}
	rm, err := BuildRelations(ag, 5)
	if err != nil {
		t.Fatal(err)
	}
	g, ok := rm.Gain("A", "C")
	if !ok {
		t.Fatal("transitive A->C relation missing")
	}
	// Gain(A->B) = 2, Gain(B->C) = 1/4, so Gain(A->C) = 1/2.
	if math.Abs(g-0.5) > 1e-12 {
		t.Errorf("Gain(A->C) = %g, want 0.5", g)
	}
	if rm.Direct("A", "C") {
		t.Error("A->C should be transitive, not direct")
	}
	if !rm.Complete() {
		t.Error("three mutually-reachable architectures should form a complete matrix")
	}
}

func TestBuildRelationsDisconnected(t *testing.T) {
	ag := AppGains{
		"A": {"a1": 1, "a2": 1, "a3": 1, "a4": 1, "a5": 1},
		"B": {"b1": 1, "b2": 1, "b3": 1, "b4": 1, "b5": 1},
	}
	rm, err := BuildRelations(ag, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rm.Complete() {
		t.Error("disconnected architectures should not be complete")
	}
	if _, err := rm.ChainGain("A", "B"); !errors.Is(err, ErrNoRelation) {
		t.Errorf("ChainGain of unrelated pair err = %v, want ErrNoRelation", err)
	}
	if g, err := rm.ChainGain("A", "A"); err != nil || g != 1 {
		t.Errorf("ChainGain(A,A) = (%g, %v), want (1, nil)", g, err)
	}
}

func TestBuildRelationsErrors(t *testing.T) {
	if _, err := BuildRelations(nil, 5); err == nil {
		t.Error("empty input should error")
	}
	if _, err := BuildRelations(AppGains{"A": {"x": 1}}, 0); err == nil {
		t.Error("minShared 0 should error")
	}
	if _, err := BuildRelations(AppGains{"A": {"x": -1}}, 1); err == nil {
		t.Error("negative gain should error")
	}
}

func TestArchsSortedAndCopied(t *testing.T) {
	ag := AppGains{
		"Zeta": {"x": 1},
		"Alfa": {"x": 2},
	}
	rm, err := BuildRelations(ag, 1)
	if err != nil {
		t.Fatal(err)
	}
	archs := rm.Archs()
	if archs[0] != "Alfa" || archs[1] != "Zeta" {
		t.Errorf("Archs = %v, want sorted", archs)
	}
	archs[0] = "mutated"
	if rm.Archs()[0] != "Alfa" {
		t.Error("Archs must return a copy")
	}
}

// Property: for any generated app-gain table where every pair shares all
// apps, the relation matrix is reciprocal and transitively consistent.
func TestRelationsReciprocalProperty(t *testing.T) {
	f := func(g1, g2, g3 uint16) bool {
		gainOf := func(u uint16) float64 { return 0.5 + float64(u%1000)/100 }
		ag := AppGains{
			"X": {"a": gainOf(g1), "b": gainOf(g2), "c": gainOf(g3), "d": 1, "e": 2},
			"Y": {"a": gainOf(g2), "b": gainOf(g3), "c": gainOf(g1), "d": 2, "e": 1},
			"Z": {"a": 1, "b": 1, "c": 1, "d": 1, "e": 1},
		}
		rm, err := BuildRelations(ag, 5)
		if err != nil {
			return false
		}
		for _, x := range rm.Archs() {
			for _, y := range rm.Archs() {
				if x == y {
					continue
				}
				gxy, ok1 := rm.Gain(x, y)
				gyx, ok2 := rm.Gain(y, x)
				if !ok1 || !ok2 {
					return false
				}
				if math.Abs(gxy*gyx-1) > 1e-9 {
					return false
				}
			}
		}
		// Direct triangle consistency: X->Z == X->Y · Y->Z ratios derived
		// from identical app sets multiply exactly through the geomean.
		gxz, _ := rm.Gain("X", "Z")
		gxy, _ := rm.Gain("X", "Y")
		gyz, _ := rm.Gain("Y", "Z")
		return math.Abs(gxz-gxy*gyz) <= 1e-9*gxz
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
