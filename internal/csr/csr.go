// Package csr implements the paper's central metric, the Chip
// Specialization Return (Section II).
//
// Equation 1 defines CSR as the ratio between a chip's end-to-end gain and
// the gain attributable to its physical properties:
//
//	CSR(Alg,Fwk,Plt,Eng) = Gain(Alg,Fwk,Plt,Eng,Phy) / Gain(Phy)
//
// Because absolute gains are only meaningful relative to another chip,
// Equation 2 factors a reported gain ratio between two chips into a
// specialization-driven part (the CSR ratio) and a CMOS-driven part (the
// physical potential ratio). This package computes both over series of
// chip observations, and additionally implements the architecture
// gain-relations machinery of Equations 3 and 4: pairwise geometric-mean
// gains over shared applications, completed by transitive closure through
// intermediary architectures — the method behind Figures 6 and 7.
package csr

import (
	"errors"
	"fmt"
	"sort"

	"accelwall/internal/gains"
	"accelwall/internal/stats"
)

// ErrNoRelation is returned when a relations matrix cannot connect two
// architectures even transitively.
var ErrNoRelation = errors.New("csr: architectures not connected by any gain relation")

// Physical supplies the Gain(Phy) denominator of Equation 1: the physical
// gain ratio of two chip configurations for a target function. The CMOS
// potential model of package gains implements it; per-area domains (e.g.
// Bitcoin mining, Section IV-D) substitute a raw device-potential model.
type Physical interface {
	Ratio(target gains.Target, a, b gains.Config) (float64, error)
}

// Observation couples a chip's physical description with its reported gain
// for the targeted computation domain (e.g. MPixels/s for a video decoder,
// GHash/s/mm² for a Bitcoin miner).
type Observation struct {
	Name string
	Chip gains.Config
	Gain float64 // reported gain, domain units
	Year float64 // fractional introduction year (optional, used for trend rows)
}

// Validate reports the first structural problem with the observation.
func (o Observation) Validate() error {
	if o.Gain <= 0 {
		return fmt.Errorf("csr: observation %q has non-positive gain %g", o.Name, o.Gain)
	}
	return nil
}

// Row is the decomposition of one observation against a baseline: the
// reported gain ratio, the physical (CMOS-driven) ratio, and their quotient
// — the specialization return.
type Row struct {
	Name         string
	Year         float64
	Gain         float64 // relative reported gain vs the baseline observation
	PhysicalGain float64 // relative physical potential vs the baseline observation
	CSR          float64 // Gain / PhysicalGain (Equation 1 in ratio form)
}

// Analyze decomposes a series of observations against the observation at
// baselineIdx, producing one Row per observation in input order. It is the
// computation behind every per-domain CSR plot in Section IV.
func Analyze(m Physical, target gains.Target, obs []Observation, baselineIdx int) ([]Row, error) {
	if m == nil {
		return nil, errors.New("csr: nil physical model")
	}
	if len(obs) == 0 {
		return nil, errors.New("csr: no observations")
	}
	if baselineIdx < 0 || baselineIdx >= len(obs) {
		return nil, fmt.Errorf("csr: baseline index %d outside [0, %d)", baselineIdx, len(obs))
	}
	base := obs[baselineIdx]
	if err := base.Validate(); err != nil {
		return nil, err
	}
	rows := make([]Row, 0, len(obs))
	for _, o := range obs {
		if err := o.Validate(); err != nil {
			return nil, err
		}
		phy, err := m.Ratio(target, o.Chip, base.Chip)
		if err != nil {
			return nil, fmt.Errorf("csr: physical ratio for %q: %w", o.Name, err)
		}
		g := o.Gain / base.Gain
		rows = append(rows, Row{
			Name:         o.Name,
			Year:         o.Year,
			Gain:         g,
			PhysicalGain: phy,
			CSR:          g / phy,
		})
	}
	return rows, nil
}

// Pairwise returns the Equation 2 decomposition of chip a against chip b:
// the reported gain ratio, the CMOS-driven ratio, and the CSR ratio.
func Pairwise(m Physical, target gains.Target, a, b Observation) (reported, cmosDriven, csrRatio float64, err error) {
	if err := a.Validate(); err != nil {
		return 0, 0, 0, err
	}
	if err := b.Validate(); err != nil {
		return 0, 0, 0, err
	}
	phy, err := m.Ratio(target, a.Chip, b.Chip)
	if err != nil {
		return 0, 0, 0, err
	}
	reported = a.Gain / b.Gain
	return reported, phy, reported / phy, nil
}

// AppGains maps architecture name -> application name -> reported gain, the
// input to the Equations 3/4 relation construction.
type AppGains map[string]map[string]float64

// RelationMatrix holds pairwise relative gains between architectures,
// Gain(X->Y) meaning "architecture X's gain relative to architecture Y",
// built from shared applications and completed transitively.
type RelationMatrix struct {
	archs []string
	rel   map[[2]string]float64
	// direct marks pairs established from shared applications (Equation 3)
	// as opposed to transitive closure (Equation 4).
	direct map[[2]string]bool
}

// Archs returns the architecture names in sorted order.
func (rm *RelationMatrix) Archs() []string {
	out := make([]string, len(rm.archs))
	copy(out, rm.archs)
	return out
}

// Gain returns Gain(x->y) and whether the pair is related.
func (rm *RelationMatrix) Gain(x, y string) (float64, bool) {
	v, ok := rm.rel[[2]string{x, y}]
	return v, ok
}

// Direct reports whether the (x, y) relation came from shared applications
// rather than transitive closure.
func (rm *RelationMatrix) Direct(x, y string) bool {
	return rm.direct[[2]string{x, y}]
}

// Complete reports whether every ordered pair of distinct architectures is
// related.
func (rm *RelationMatrix) Complete() bool {
	n := len(rm.archs)
	return len(rm.rel) >= n*(n-1)
}

// BuildRelations constructs the relation matrix from per-application gains.
//
// Following Section IV-B: for every pair of architectures sharing at least
// minShared applications, the relative gain is the geometric mean of the
// per-application gain ratios (Equation 3). Pairs with fewer shared
// applications are then filled by transitivity: the geometric mean over all
// intermediary architectures Γ of Gain(X->Γ)·Gain(Γ->Y) (Equation 4),
// iterated until no new pair is added.
func BuildRelations(appGains AppGains, minShared int) (*RelationMatrix, error) {
	if minShared < 1 {
		return nil, fmt.Errorf("csr: minShared must be >= 1, got %d", minShared)
	}
	if len(appGains) == 0 {
		return nil, errors.New("csr: no architectures")
	}
	rm := &RelationMatrix{
		rel:    make(map[[2]string]float64),
		direct: make(map[[2]string]bool),
	}
	for arch, apps := range appGains {
		for app, g := range apps {
			if g <= 0 {
				return nil, fmt.Errorf("csr: architecture %q app %q has non-positive gain %g", arch, app, g)
			}
		}
		rm.archs = append(rm.archs, arch)
	}
	sort.Strings(rm.archs)
	// Equation 3: direct pairs from shared applications.
	for _, x := range rm.archs {
		for _, y := range rm.archs {
			if x == y {
				continue
			}
			ratios := sharedRatios(appGains[x], appGains[y])
			if len(ratios) < minShared {
				continue
			}
			g, err := stats.GeoMean(ratios)
			if err != nil {
				return nil, fmt.Errorf("csr: relating %q to %q: %w", x, y, err)
			}
			rm.rel[[2]string{x, y}] = g
			rm.direct[[2]string{x, y}] = true
		}
	}
	// Equation 4: iterative transitive completion. "We iteratively
	// construct the relations matrix, until we do not add a new pair."
	for {
		added := false
		for _, x := range rm.archs {
			for _, y := range rm.archs {
				if x == y {
					continue
				}
				if _, ok := rm.rel[[2]string{x, y}]; ok {
					continue
				}
				var products []float64
				for _, via := range rm.archs {
					if via == x || via == y {
						continue
					}
					gxv, ok1 := rm.rel[[2]string{x, via}]
					gvy, ok2 := rm.rel[[2]string{via, y}]
					if ok1 && ok2 {
						products = append(products, gxv*gvy)
					}
				}
				if len(products) == 0 {
					continue
				}
				g, err := stats.GeoMean(products)
				if err != nil {
					return nil, fmt.Errorf("csr: closing %q to %q: %w", x, y, err)
				}
				rm.rel[[2]string{x, y}] = g
				added = true
			}
		}
		if !added {
			return rm, nil
		}
	}
}

// sharedRatios returns gx(app)/gy(app) for every app present in both maps,
// in sorted app order for determinism.
func sharedRatios(gx, gy map[string]float64) []float64 {
	apps := make([]string, 0, len(gx))
	for app := range gx {
		if _, ok := gy[app]; ok {
			apps = append(apps, app)
		}
	}
	sort.Strings(apps)
	out := make([]float64, 0, len(apps))
	for _, app := range apps {
		out = append(out, gx[app]/gy[app])
	}
	return out
}

// ChainGain resolves Gain(x->y) from the matrix, returning ErrNoRelation if
// the architectures remain unconnected after closure.
func (rm *RelationMatrix) ChainGain(x, y string) (float64, error) {
	if x == y {
		return 1, nil
	}
	if g, ok := rm.Gain(x, y); ok {
		return g, nil
	}
	return 0, fmt.Errorf("%w: %q -> %q", ErrNoRelation, x, y)
}
